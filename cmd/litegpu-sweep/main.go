// Command litegpu-sweep runs the concurrent serving sweep: it crosses
// GPU types × models × workloads × arrival rates, simulates a phase-split
// deployment for every cell over a worker pool, and prints the grid.
//
// Usage:
//
//	litegpu-sweep [flags]
//
// Examples:
//
//	litegpu-sweep                                  # full Table 1 × paper models grid
//	litegpu-sweep -gpus H100,Lite -models Llama3-8B -rates 0.5,2,8
//	litegpu-sweep -workers 1                       # sequential baseline (same output)
//	litegpu-sweep -afr 0.09 -failure-timescale 1e6 # add a failure-injection axis
//	litegpu-sweep -scheduler static,continuous,chunked  # add a scheduling-policy axis
//	litegpu-sweep -fabric off,clos:pluggable,flat-circuit:cpo:circuit  # add a fabric axis
//	litegpu-sweep -kv off,recompute+prefix,swap+prefix  # add a KV-memory axis
//	litegpu-sweep -admission none,adaptive -queue-limit 48 -client-timeout 15  # add an overload-gate axis
//
// With -scheduler listing several policies, every grid point is
// simulated once per policy on the identical trace and silicon, so the
// scheduler columns are directly comparable.
//
// With -admission listing several gates, every grid point is simulated
// once per gate on the identical trace, so the admission columns
// isolate what shedding buys (and costs) under overload; -client-timeout
// makes the grid's clients a closed loop (deadlines, retry backoff,
// abandonment), which is when the gates matter.
//
// With -afr, every grid point is simulated twice — clean and with GPU
// failure injection at the given reference AFR (optionally accelerated
// by -failure-timescale, with -spares hot spares per pool) — and the
// availability/failure columns show the contrast.
//
// With -cpuprofile/-memprofile, the run writes pprof profiles of the
// sweep (the heap profile is taken after the sweep, post-GC). Traces
// stream into each cell's simulation on demand, so memory stays
// bounded by the in-flight working set per worker regardless of
// -horizon × -rates; see docs/performance.md.
//
// With -trace-out/-probe-interval/-probe-out, the grid's first cell
// runs with an observer attached and exports its sampled request
// timelines (Chrome trace_event JSON, Perfetto-loadable) and windowed
// time-series probes; the instrumented cell's results stay
// byte-identical to the uninstrumented run. See docs/observability.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"text/tabwriter"

	"litegpu"
)

func main() {
	gpuList := flag.String("gpus", "", "comma-separated Table 1 GPU names (default: all six)")
	modelList := flag.String("models", "", "comma-separated model presets (default: the three paper models)")
	workloadList := flag.String("workloads", "coding,conversation", "workload shapes: coding | conversation | agent")
	rateList := flag.String("rates", "0.5,1.5", "comma-separated arrival rates (req/s)")
	schedList := flag.String("scheduler", "static", "comma-separated scheduling policies: static | continuous | chunked")
	fabricList := flag.String("fabric", "off", "comma-separated fabric axis: off and/or fabric[:link[:switch]] specs (clos | leaf-spine | flat-circuit), each simulated in the event loop per grid point")
	linkName := flag.String("link", "", "default link technology for -fabric specs that omit one: copper | pluggable | cpo")
	kvList := flag.String("kv", "off", "comma-separated KV-memory axis: off and/or policy[+prefix] specs (recompute | swap), each simulated per grid point")
	admList := flag.String("admission", "none", "comma-separated overload-gate axis: none | priority | adaptive, each simulated per grid point")
	queueLimit := flag.Int("queue-limit", 64, "admission outstanding-work threshold for the priority/adaptive gates")
	clientTimeout := flag.Float64("client-timeout", 0, "closed-loop client deadline in seconds for every cell (0 = open-loop clients)")
	clientRetries := flag.Int("client-retries", 1, "client retry budget when -client-timeout is set")
	stragglerCV := flag.Float64("straggler-cv", 0, "persistent per-instance slow-factor coefficient of variation for every cell (0 = uniform)")
	prefillInst := flag.Int("prefill-instances", 1, "prefill engines per deployment")
	decodeInst := flag.Int("decode-instances", 1, "decode engines per deployment")
	horizon := flag.Float64("horizon", 300, "arrival window in simulated seconds")
	drain := flag.Float64("drain", 120, "extra simulated seconds for in-flight requests to finish")
	seed := flag.Uint64("seed", 42, "base workload seed (each cell derives its own)")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	afr := flag.Float64("afr", 0, "add a failure-mode axis at this reference-package annualized failure rate (0 = clean grid only)")
	spares := flag.Int("spares", 1, "hot spares per pool in the failure mode")
	timescale := flag.Float64("failure-timescale", 1, "failure-clock acceleration in the failure mode")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile (taken after the sweep) to this file")
	traceOut := flag.String("trace-out", "", "instrument the grid's first cell and export its sampled request timelines as Chrome trace_event JSON to this file")
	probeInterval := flag.Float64("probe-interval", 0, "time-series probe period in simulated seconds for the instrumented cell (required for -probe-out)")
	probeOut := flag.String("probe-out", "", "export the instrumented cell's time-series probes to this file (CSV, or JSON when the name ends in .json)")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		// fatalf exits via os.Exit, which skips defers — route the stop
		// through stopProfile so every exit path finalizes the profile
		// (an unterminated pprof file does not parse).
		stopProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
		defer stopProfile()
	}

	spec := litegpu.SweepSpec{
		PrefillInstances: *prefillInst,
		DecodeInstances:  *decodeInst,
		Horizon:          litegpu.Seconds(*horizon),
		Drain:            litegpu.Seconds(*drain),
		Seed:             *seed,
		Workers:          *workers,
	}
	for _, name := range splitList(*gpuList) {
		g, ok := litegpu.GPUByName(name)
		if !ok {
			fatalf("unknown GPU %q", name)
		}
		spec.GPUs = append(spec.GPUs, g)
	}
	for _, name := range splitList(*modelList) {
		m, ok := litegpu.ModelByName(name)
		if !ok {
			fatalf("unknown model %q", name)
		}
		spec.Models = append(spec.Models, m)
	}
	for _, name := range splitList(*workloadList) {
		switch name {
		case "coding":
			spec.Workloads = append(spec.Workloads, litegpu.SweepWorkload{Name: name, Make: litegpu.CodingWorkload})
		case "conversation":
			spec.Workloads = append(spec.Workloads, litegpu.SweepWorkload{Name: name, Make: litegpu.ConversationWorkload})
		case "agent":
			spec.Workloads = append(spec.Workloads, litegpu.SweepWorkload{Name: name, Make: litegpu.AgentWorkload})
		default:
			fatalf("unknown workload %q", name)
		}
	}
	for _, s := range splitList(*rateList) {
		r, err := strconv.ParseFloat(s, 64)
		if err != nil || r <= 0 {
			fatalf("bad rate %q", s)
		}
		spec.Rates = append(spec.Rates, r)
	}
	withSchedulers := false
	for _, name := range splitList(*schedList) {
		pol, err := litegpu.ParseSchedulerPolicy(name)
		if err != nil {
			fatalf("%v", err)
		}
		if pol != litegpu.StaticDisaggregated {
			withSchedulers = true
		}
		spec.Schedulers = append(spec.Schedulers, pol)
	}
	withSchedulers = withSchedulers || len(spec.Schedulers) > 1

	withFabrics := false
	for _, s := range splitList(*fabricList) {
		nc, err := litegpu.ParseNetworkConfigWithLink(s, *linkName)
		if err != nil {
			fatalf("%v", err)
		}
		if nc.Enabled() {
			withFabrics = true
		}
		spec.Fabrics = append(spec.Fabrics, nc)
	}
	withFabrics = withFabrics || len(spec.Fabrics) > 1

	withKV := false
	for _, s := range splitList(*kvList) {
		kc, err := litegpu.ParseKVConfig(s)
		if err != nil {
			fatalf("%v", err)
		}
		if kc.Enabled() {
			withKV = true
		}
		spec.KVPolicies = append(spec.KVPolicies, kc)
	}
	withKV = withKV || len(spec.KVPolicies) > 1

	withAdmissions := false
	for _, name := range splitList(*admList) {
		pol, err := litegpu.ParseAdmissionPolicy(name)
		if err != nil {
			fatalf("%v", err)
		}
		adm := litegpu.ServeAdmissionConfig{}
		if pol != litegpu.AdmitAll {
			adm = litegpu.ServeAdmissionConfig{Policy: pol, QueueLimit: *queueLimit, MinPriority: 1}
			withAdmissions = true
		}
		spec.Admissions = append(spec.Admissions, adm)
	}
	withAdmissions = withAdmissions || len(spec.Admissions) > 1
	withClients := *clientTimeout > 0
	if withClients {
		spec.Client = litegpu.ServeClientConfig{
			Default: litegpu.ClientBehavior{
				Timeout: litegpu.Seconds(*clientTimeout),
				Retries: *clientRetries,
				Jitter:  0.5,
			},
			Seed: *seed,
		}
	}
	if *stragglerCV > 0 {
		spec.Straggler = litegpu.ServeStragglerConfig{
			Jitter: litegpu.StragglerJitter{CV: *stragglerCV, Tail: litegpu.StragglerLogNormal},
			Seed:   *seed,
		}
	}

	withFailures := *afr > 0
	if withFailures {
		spec.FailureModes = []litegpu.SweepFailureMode{
			{Name: "none"},
			{Name: fmt.Sprintf("afr=%.2f×%.0g", *afr, *timescale), Failures: litegpu.ServeFailureConfig{
				Enabled:   true,
				Params:    litegpu.DefaultFailureParams(*afr),
				Spares:    *spares,
				TimeScale: *timescale,
			}},
		}
	}

	if *probeOut != "" && *probeInterval <= 0 {
		fatalf("-probe-out needs a positive -probe-interval")
	}
	var recorder *litegpu.Observer
	if *traceOut != "" || *probeOut != "" {
		recorder = litegpu.NewObserver(litegpu.ObserverOptions{
			Seed:          *seed,
			ProbeInterval: *probeInterval,
		})
		spec.Observer = recorder
	}

	cells, err := litegpu.Sweep(context.Background(), spec)
	if err != nil {
		fatalf("sweep: %v", err)
	}

	if recorder != nil {
		writeExport := func(path string, write func(io.Writer) error) {
			f, err := os.Create(path)
			if err != nil {
				fatalf("%v", err)
			}
			if err := write(f); err != nil {
				f.Close()
				fatalf("write %s: %v", path, err)
			}
			if err := f.Close(); err != nil {
				fatalf("close %s: %v", path, err)
			}
		}
		if *traceOut != "" {
			writeExport(*traceOut, recorder.WriteTrace)
		}
		if *probeOut != "" {
			write := recorder.WriteProbesCSV
			if strings.HasSuffix(*probeOut, ".json") {
				write = recorder.WriteProbesJSON
			}
			writeExport(*probeOut, write)
		}
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	schedCol := "\tSched"
	if !withSchedulers {
		schedCol = ""
	}
	fabricCols := "\tFabric\tNet%"
	if !withFabrics {
		fabricCols = ""
	}
	kvCols := "\tKV\tPreempt/Hit%"
	if !withKV {
		kvCols = ""
	}
	admCols := "\tGate\tShed/Abandon"
	if !withAdmissions && !withClients {
		admCols = ""
	}
	failCols := "\tFailures\tAvail/Ev"
	if !withFailures {
		failCols = ""
	}
	fmt.Fprintln(tw, "GPU\tModel\tWorkload\treq/s"+schedCol+fabricCols+kvCols+admCols+"\tDeployment\tDone/Arrived\tDrop\tTTFT p99\tTBT p99\tTTFT att.\tTBT att."+failCols)
	for _, c := range cells {
		row := fmt.Sprintf("%s\t%s\t%s\t%.2f", c.GPU, c.Model, c.Workload, c.Rate)
		if withSchedulers {
			row += "\t" + c.Scheduler
		}
		if c.Err != "" {
			if withFabrics {
				row += fmt.Sprintf("\t%s\t", c.Fabric)
			}
			if withKV {
				row += fmt.Sprintf("\t%s\t", c.KV)
			}
			if withAdmissions || withClients {
				row += fmt.Sprintf("\t%s\t", c.Admission)
			}
			row += fmt.Sprintf("\tinfeasible: %s\t\t\t\t\t\t", c.Err)
			if withFailures {
				row += fmt.Sprintf("\t%s\t", c.Failure)
			}
			fmt.Fprintln(tw, row)
			continue
		}
		m := c.Metrics
		if withFabrics {
			row += fmt.Sprintf("\t%s\t%.1f%%", c.Fabric, m.NetworkBoundFraction*100)
		}
		if withKV {
			row += fmt.Sprintf("\t%s\t%d/%.0f%%", c.KV, m.KVPreemptions, m.KVCacheHitRate*100)
		}
		if withAdmissions || withClients {
			row += fmt.Sprintf("\t%s\t%d/%d", c.Admission, m.Shed, m.Abandoned)
		}
		row += fmt.Sprintf("\t%s\t%d/%d\t%d\t%.0f ms\t%.1f ms\t%.1f%%\t%.1f%%",
			deployment(c.Config),
			m.Completed, m.Arrived, m.Dropped,
			m.TTFT.P99*1e3, m.TBT.P99*1e3,
			m.TTFTAttainment*100, m.TBTAttainment*100)
		if withFailures {
			row += fmt.Sprintf("\t%s\t%.3f/%d", c.Failure, m.Availability, m.FailureEvents)
		}
		fmt.Fprintln(tw, row)
	}
	tw.Flush()

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatalf("memprofile: %v", err)
		}
		defer f.Close()
		runtime.GC() // materialize the post-sweep live set
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatalf("memprofile: %v", err)
		}
	}
}

// deployment renders a cell's instance shape: phase pools for the
// static policy, the colocated instance set otherwise.
func deployment(c litegpu.ServeConfig) string {
	if c.Scheduler.Colocated() {
		n, g := c.ColocatedShape()
		return fmt.Sprintf("%d×%dC", n, g)
	}
	return fmt.Sprintf("%d×%dP+%d×%dD",
		c.PrefillInstances, c.PrefillGPUs, c.DecodeInstances, c.DecodeGPUs)
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// stopProfile finalizes an in-progress CPU profile; set once profiling
// starts. Calling it twice is harmless (StopCPUProfile is a no-op when
// no profile is active).
var stopProfile = func() {}

func fatalf(format string, args ...any) {
	stopProfile()
	fmt.Fprintf(os.Stderr, "litegpu-sweep: "+format+"\n", args...)
	os.Exit(1)
}
