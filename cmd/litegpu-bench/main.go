// Command litegpu-bench is the benchmark-regression harness: it runs
// the repository benchmark suite (bench_test.go) under `go test -bench`
// with -benchmem and emits a machine-readable JSON report — ns/op,
// B/op, and allocs/op per benchmark — suitable for committing next to
// the code it measures (BENCH_*.json) and for diffing across commits.
//
// Usage:
//
//	go run ./cmd/litegpu-bench [flags]
//
// Examples:
//
//	go run ./cmd/litegpu-bench -out BENCH_4.json
//	go run ./cmd/litegpu-bench -bench 'ServingSim|PlanCapacity' -benchtime 2s
//	go run ./cmd/litegpu-bench -compare BENCH_3.json -out BENCH_4.json
//	go run ./cmd/litegpu-bench -smoke   # CI: one iteration per benchmark
//	go run ./cmd/litegpu-bench -smoke -compare BENCH_5.json -threshold 300
//
// With -compare, every benchmark present in the baseline file gains
// old/new ratios (speedup = old ns/op ÷ new ns/op, alloc_ratio = old
// allocs/op ÷ new allocs/op), so a committed report is also the
// regression verdict against the previous PR's numbers. Benchmarks
// absent from the baseline — typically ones added in the current PR —
// are reported as skipped and never fail the run, and a geomean-speedup
// summary over the matched set is printed. With -threshold N, the run
// exits nonzero when any matched benchmark is more than N percent
// slower than its baseline — the CI regression gate.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`

	// Baseline is present exactly when -compare found the benchmark in
	// the baseline report — its presence (not any non-zero field) is
	// what distinguishes "compared" from "new benchmark", so zero-alloc
	// baselines and zero-alloc regressions both keep their evidence.
	Baseline *Comparison `json:"baseline,omitempty"`
}

// Comparison carries the baseline numbers and the derived ratios for
// one benchmark.
type Comparison struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Speedup is baseline ns/op ÷ current ns/op (>1 = faster now).
	Speedup float64 `json:"speedup"`
	// AllocRatio is baseline allocs/op ÷ current allocs/op, present
	// only when both sides are non-zero — when either side is zero the
	// raw allocs_per_op fields tell the story a ratio cannot.
	AllocRatio float64 `json:"alloc_ratio,omitempty"`
}

// Report is the harness output.
type Report struct {
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	NumCPU     int      `json:"num_cpu"`
	BenchTime  string   `json:"benchtime"`
	Timestamp  string   `json:"timestamp"`
	Baseline   string   `json:"baseline,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// benchLine matches one `go test -bench -benchmem` result row, e.g.
//
//	BenchmarkServingSim-8   12   95331842 ns/op   51234 B/op   612 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	bench := flag.String("bench", ".", "benchmark regexp passed to go test -bench")
	benchtime := flag.String("benchtime", "", "go test -benchtime (e.g. 1s, 100x); empty = go default")
	pkg := flag.String("pkg", ".", "package to benchmark")
	out := flag.String("out", "", "output JSON path (default stdout)")
	compare := flag.String("compare", "", "baseline JSON report to diff against")
	threshold := flag.Float64("threshold", -1,
		"regression gate: with -compare, exit nonzero when any matched benchmark is more than this many percent slower than its baseline (negative = off)")
	smoke := flag.Bool("smoke", false, "CI smoke mode: -benchtime 1x, fail on any build/vet/run error")
	flag.Parse()

	bt := *benchtime
	if *smoke {
		if bt == "" {
			bt = "1x"
		}
		// The smoke contract is "fail on any build/vet/run error":
		// `go test` only builds, so run vet explicitly first.
		vet := exec.Command("go", "vet", *pkg)
		var vetOut bytes.Buffer
		vet.Stdout, vet.Stderr = &vetOut, &vetOut
		fmt.Fprintf(os.Stderr, "litegpu-bench: go vet %s\n", *pkg)
		if err := vet.Run(); err != nil {
			os.Stderr.Write(vetOut.Bytes())
			fatalf("go vet failed: %v", err)
		}
	}

	args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem"}
	if bt != "" {
		args = append(args, "-benchtime", bt)
	}
	args = append(args, *pkg)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	fmt.Fprintf(os.Stderr, "litegpu-bench: go %s\n", strings.Join(args, " "))
	if err := cmd.Run(); err != nil {
		os.Stderr.Write(stderr.Bytes())
		os.Stderr.Write(stdout.Bytes())
		fatalf("go test -bench failed: %v", err)
	}

	results, err := parseBench(stdout.String())
	if err != nil {
		fatalf("%v", err)
	}
	if len(results) == 0 {
		os.Stderr.Write(stdout.Bytes())
		fatalf("no benchmark results matched %q", *bench)
	}

	report := Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		BenchTime: bt,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	var regressions []string
	if *compare != "" {
		base, err := readReport(*compare)
		if err != nil {
			fatalf("read baseline: %v", err)
		}
		report.Baseline = *compare
		byName := make(map[string]Result, len(base.Benchmarks))
		for _, r := range base.Benchmarks {
			byName[r.Name] = r
		}
		// Benchmarks absent from the baseline (typically added this PR)
		// are reported and skipped, never failed: a new benchmark has no
		// regression to gate on.
		var skipped []string
		logSpeedup := 0.0
		compared := 0
		for i := range results {
			b, ok := byName[results[i].Name]
			if !ok {
				skipped = append(skipped, results[i].Name)
				continue
			}
			c := &Comparison{
				NsPerOp:     b.NsPerOp,
				BytesPerOp:  b.BytesPerOp,
				AllocsPerOp: b.AllocsPerOp,
			}
			if results[i].NsPerOp > 0 {
				c.Speedup = b.NsPerOp / results[i].NsPerOp
				logSpeedup += math.Log(c.Speedup)
				compared++
			}
			if results[i].AllocsPerOp > 0 && b.AllocsPerOp > 0 {
				c.AllocRatio = float64(b.AllocsPerOp) / float64(results[i].AllocsPerOp)
			}
			results[i].Baseline = c
			if *threshold >= 0 && b.NsPerOp > 0 {
				if slow := (results[i].NsPerOp - b.NsPerOp) / b.NsPerOp * 100; slow > *threshold {
					regressions = append(regressions, fmt.Sprintf(
						"%s: %.0f ns/op vs baseline %.0f ns/op (+%.1f%% > %.1f%%)",
						results[i].Name, results[i].NsPerOp, b.NsPerOp, slow, *threshold))
				}
			}
		}
		for _, name := range skipped {
			fmt.Fprintf(os.Stderr, "litegpu-bench: skipped (not in baseline): %s\n", name)
		}
		if compared > 0 {
			fmt.Fprintf(os.Stderr, "litegpu-bench: geomean speedup vs %s: %.3fx (%d compared, %d new)\n",
				*compare, math.Exp(logSpeedup/float64(compared)), compared, len(skipped))
		}
	}
	report.Benchmarks = results

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fatalf("write %s: %v", *out, err)
		}
		fmt.Fprintf(os.Stderr, "litegpu-bench: wrote %d benchmarks to %s\n", len(results), *out)
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "litegpu-bench: REGRESSION %s\n", r)
		}
		fatalf("%d benchmark(s) regressed beyond the %.1f%% threshold", len(regressions), *threshold)
	}
}

// parseBench extracts benchmark rows from `go test -bench` output,
// skipping the one-time artifact printouts interleaved with them.
func parseBench(output string) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(strings.NewReader(output))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		r := Result{Name: m[1], Procs: 1}
		if m[2] != "" {
			r.Procs, _ = strconv.Atoi(m[2])
		}
		r.Iterations, _ = strconv.ParseInt(m[3], 10, 64)
		var err error
		if r.NsPerOp, err = strconv.ParseFloat(m[4], 64); err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %v", sc.Text(), err)
		}
		if m[5] != "" {
			r.BytesPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		if m[6] != "" {
			r.AllocsPerOp, _ = strconv.ParseInt(m[6], 10, 64)
		}
		results = append(results, r)
	}
	return results, sc.Err()
}

func readReport(path string) (Report, error) {
	var r Report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	return r, json.Unmarshal(data, &r)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "litegpu-bench: "+format+"\n", args...)
	os.Exit(1)
}
