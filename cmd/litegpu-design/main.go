// Command litegpu-design explores the Lite-GPU design space: given a
// parent GPU and a split factor, it derives the Lite-GPU spec and the
// full hardware story — yield, manufacturing cost, shoreline bandwidth,
// cooling, overclock headroom, reliability, and fabric energy.
//
// Usage:
//
//	litegpu-design [-gpu H100] [-split 4]
package main

import (
	"flag"
	"fmt"
	"os"

	"litegpu"
)

func main() {
	gpuName := flag.String("gpu", "H100", "parent GPU (a Table 1 name)")
	split := flag.Int("split", 4, "number of Lite-GPUs per parent GPU")
	flag.Parse()

	parent, ok := litegpu.GPUByName(*gpuName)
	if !ok {
		fmt.Fprintf(os.Stderr, "litegpu-design: unknown GPU %q\n", *gpuName)
		os.Exit(1)
	}
	if *split < 2 {
		fmt.Fprintln(os.Stderr, "litegpu-design: split must be ≥ 2")
		os.Exit(1)
	}
	d := litegpu.DesignCluster(parent, *split)

	fmt.Printf("Lite-GPU design: %s split %d ways\n\n", parent.Name, d.Split)
	fmt.Printf("parent: %v\n", d.Parent)
	fmt.Printf("lite:   %v\n\n", d.Lite)
	fmt.Printf("shoreline gain (bandwidth-to-compute headroom): %.2f×\n", d.ShorelineGain)
	fmt.Printf("die yield gain:                                 %.2f×\n", d.YieldGain)
	fmt.Printf("silicon cost saving per compute:                %.0f%%\n", d.SiliconCostSaving*100)
	fmt.Printf("packaged cost saving per compute:               %.0f%%\n", d.PackageCostSaving*100)
	fmt.Printf("cooling class per package:                      %v\n", d.Cooling)
	fmt.Printf("sustained clock headroom on that cooling:       %.2f×\n", d.OverclockHeadroom)
	fmt.Printf("availability gain (8-GPU instance, 1 spare):    %+.5f\n", d.AvailabilityGain)
	fmt.Printf("circuit-vs-packet fabric energy advantage:      %.0f%%\n", d.CircuitEnergyAdvantage*100)
}
