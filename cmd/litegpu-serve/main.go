// Command litegpu-serve runs the discrete-event LLM serving simulator
// on a synthetic workload, under one of three scheduling policies:
// static Splitwise-style phase splitting (the default), continuous
// batching, or chunked prefill.
//
// Usage:
//
//	litegpu-serve [flags]
//
// Example: compare an H100 deployment with its Lite-GPU replacement:
//
//	litegpu-serve -gpu H100 -model Llama3-70B -prefill-gpus 2 -decode-gpus 2
//	litegpu-serve -gpu Lite -model Llama3-70B -prefill-gpus 8 -decode-gpus 8
//
// With -scheduler, the same silicon runs a different serving
// discipline; -prefill-chunk tunes chunked prefill's stall bound:
//
//	litegpu-serve -scheduler continuous
//	litegpu-serve -scheduler chunked -prefill-chunk 256
//
// With -afr, GPU failure injection is enabled: instances die at the
// area-scaled annualized failure rate, in-flight requests requeue (or
// drop with -drop-on-failure), and -spares hot spares restore capacity
// after a takeover delay. -failure-timescale accelerates the failure
// clock so a minutes-long run exhibits months of reliability dynamics:
//
//	litegpu-serve -afr 0.09 -spares 2
//	litegpu-serve -afr 0.09 -spares 2 -failure-timescale 1e6
//
// With -fabric, the interconnect enters the event loop: KV-cache
// handoffs between phase pools that cross scale-up nodes occupy real
// port bandwidth, contend, and pay switch latency (see
// docs/networking.md). -link picks the link technology,
// -fabric-latency-scale stresses the latency axis:
//
//	litegpu-serve -gpu Lite -model Llama3-70B -prefill-gpus 8 -decode-gpus 8 \
//	    -fabric clos -link pluggable
//	litegpu-serve -fabric flat-circuit:cpo:circuit
//
// With -second-gpu, a second pool of that GPU type serves the same
// trace side by side (instance counts as the main pool, tensor
// parallelism auto-sized), with -router picking round-robin or
// join-shortest-queue:
//
//	litegpu-serve -gpu H100 -second-gpu Lite -router jsq
//
// With -plan, the instance-count flags are ignored (they are what the
// planner searches over) and the capacity planner sizes the cheapest
// deployment meeting the SLO targets instead; -horizon, the batch caps,
// and explicitly-set -prefill-gpus/-decode-gpus TP degrees are honored,
// and -scheduler auto sizes all three policies and keeps the cheapest
// per Mtoken.
// Combined with -afr the plan becomes availability-aware: a hot-spare
// count joins the search (target -min-availability) and is priced into
// the TCO:
//
//	litegpu-serve -plan -gpu Lite -model Llama3-8B -rate 20 -ttft-attainment 0.99
//	litegpu-serve -plan -gpu Lite -model Llama3-8B -rate 20 -afr 0.09 -min-availability 0.99999
//
// In plan mode -fabric can also be a comma-separated candidate list or
// "auto": the fabric joins scheduler and spares as a search axis, each
// candidate is simulated in the loop and priced at the resulting
// deployment scale, and the cheapest feasible plan per Mtoken wins:
//
//	litegpu-serve -plan -gpu Lite -model Llama3-70B -rate 20 -fabric auto
//	litegpu-serve -plan -fabric clos:copper,flat-circuit:cpo:circuit
//
// With -kv, decode KV-cache memory becomes a finite, paged resource
// (see docs/memory.md): admission blocks when an instance's block pool
// is exhausted, growing sequences preempt the newest batch member when
// memory runs out (recompute re-runs its prefill; swap pays a fabric
// round trip), and +prefix turns on shared-prefix block caching. The
// agent workload is the shape that makes prefix caching pay off:
//
//	litegpu-serve -kv recompute
//	litegpu-serve -kv swap+prefix -workload agent -fabric clos:pluggable
//
// In plan mode -kv can also be a comma-separated candidate list or
// "auto": the memory policy joins scheduler and fabric as a search
// axis and the cheapest feasible plan per Mtoken wins:
//
//	litegpu-serve -plan -gpu Lite -model Llama3-8B -rate 20 -kv auto
//
// With -tenants, several tenant classes share the deployment, each with
// its own workload shape, rate, and scheduling priority; -flash and
// -diurnal shape the aggregate arrival rate over time. -client-timeout
// turns the clients into a closed loop (deadlines, capped-exponential
// retry backoff, abandonment), -admission picks the overload gate, and
// -autoscale turns on the elastic control loop:
//
//	litegpu-serve -tenants paid:conversation:5:1,free:conversation:15:0 \
//	    -flash 60:120:2 -client-timeout 15 -client-retries 2 \
//	    -admission adaptive -queue-limit 48
//	litegpu-serve -autoscale -decode-instances 4 -flash 60:60:3
//
// In plan mode -admission can also be "auto": the gate joins scheduler,
// fabric, and kv as a search axis and the cheapest feasible plan per
// Mtoken wins. -straggler-cv gives every instance a persistent slow
// factor so the plan holds on a fleet with realistic spread:
//
//	litegpu-serve -plan -rate 20 -client-timeout 30 -admission auto -queue-limit 64
//	litegpu-serve -plan -rate 20 -straggler-cv 0.2 -straggler-tail lognormal
//
// With -trace-out, the run records sampled per-request span timelines
// and exports them as Chrome trace_event JSON (load the file in
// Perfetto: pools render as processes, instances as threads, requests
// as flow arrows). -probe-interval/-probe-out export windowed
// time-series probes (queue depth, live instances, KV blocks, shed and
// retry rates, goodput) as CSV or JSON, and -progress prints a
// wall-clock heartbeat to stderr. Attaching the observer never changes
// results — outputs are byte-identical with or without it:
//
//	litegpu-serve -flash 60:60:3 -admission adaptive -queue-limit 48 \
//	    -trace-out trace.json -probe-interval 5 -probe-out probes.csv
//	litegpu-serve -rate 50 -horizon 3600 -progress
//
// In plan mode, -explain prints the planner's per-candidate decision
// trace (every sizing rung with its SLO verdict, and why the winner
// won), and -plan-trace exports the same record as JSON:
//
//	litegpu-serve -plan -gpu Lite -model Llama3-8B -rate 20 -scheduler auto -explain
//	litegpu-serve -plan -rate 20 -kv auto -plan-trace plan.json
//
// See docs/observability.md for the event taxonomy and export schemas.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"litegpu"
)

func main() {
	gpuName := flag.String("gpu", "H100", "GPU type (a Table 1 name)")
	modelName := flag.String("model", "Llama3-70B", "model preset")
	rate := flag.Float64("rate", 1.2, "request arrival rate (req/s)")
	horizon := flag.Float64("horizon", 300, "simulated seconds")
	seed := flag.Uint64("seed", 42, "workload seed")
	prefillInst := flag.Int("prefill-instances", 2, "prefill engine count")
	prefillGPUs := flag.Int("prefill-gpus", 2, "GPUs (TP degree) per prefill engine")
	decodeInst := flag.Int("decode-instances", 1, "decode engine count")
	decodeGPUs := flag.Int("decode-gpus", 2, "GPUs (TP degree) per decode engine")
	maxPrefill := flag.Int("max-prefill-batch", 4, "prompts fused per prefill pass")
	maxDecode := flag.Int("max-decode-batch", 64, "continuous-batching cap")
	workload := flag.String("workload", "coding", "workload shape: coding | conversation | agent (shared-prefix)")
	scheduler := flag.String("scheduler", "static", "scheduling policy: static (phase-split) | continuous (batching) | chunked (prefill); plan mode also accepts auto (size all three, keep the cheapest)")
	prefillChunk := flag.Int("prefill-chunk", 0, "chunked-prefill chunk size in prompt tokens (0 = default 512)")
	afr := flag.Float64("afr", 0, "enable failure injection at this reference-package annualized failure rate (e.g. 0.09; 0 = off)")
	spares := flag.Int("spares", 0, "hot spares per pool under failure injection")
	timescale := flag.Float64("failure-timescale", 1, "failure-clock acceleration factor (rates ×k; repair stays real time)")
	dropOnFailure := flag.Bool("drop-on-failure", false, "drop in-flight requests when their instance dies instead of requeueing")
	secondGPU := flag.String("second-gpu", "", "add a second pool of this GPU type serving the same trace (heterogeneous cluster)")
	router := flag.String("router", "rr", "arrival router across pools: rr (round-robin) | jsq (join-shortest-queue)")
	fabricSpec := flag.String("fabric", "off", "put the network in the event loop: off, or fabric[:link[:switch]] with fabric clos | leaf-spine | flat-circuit, link copper | pluggable | cpo, switch packet | circuit; plan mode also accepts a comma-separated candidate list or auto (search the default candidates)")
	linkName := flag.String("link", "", "default link technology for -fabric specs that omit one: copper | pluggable | cpo")
	kvSpec := flag.String("kv", "off", "model decode KV-cache memory as a finite paged resource: off, or policy[+prefix] with policy recompute | swap; plan mode also accepts a comma-separated candidate list or auto (search the default candidates)")
	kvBlocks := flag.Int("kv-blocks", 0, "override the per-instance KV block budget (0 = derive from HBM capacity net of weights)")
	kvBlockTokens := flag.Int("kv-block-tokens", 0, "KV page size in tokens (0 = default 16)")
	latScale := flag.Float64("fabric-latency-scale", 1, "multiply fabric path latency (sensitivity stress knob, like -failure-timescale for failures)")
	plan := flag.Bool("plan", false, "size the cheapest deployment meeting the SLO targets instead of simulating fixed pools")
	ttftAttain := flag.Float64("ttft-attainment", 0.99, "plan mode: required fraction of requests meeting the TTFT limit")
	tbtAttain := flag.Float64("tbt-attainment", 0.99, "plan mode: required fraction of requests meeting the TBT limit")
	minCompletion := flag.Float64("min-completion", 0.95, "plan mode: required fraction of arrived requests completing")
	minAvailability := flag.Float64("min-availability", 0.999, "plan mode with -afr: required analytic availability of the spared deployment")
	maxInstances := flag.Int("max-instances", 64, "plan mode: per-pool instance-count search ceiling")
	tenants := flag.String("tenants", "", "multi-tenant trace: comma-separated name:workload:rate:priority classes (overrides -workload/-rate), e.g. paid:conversation:5:1,free:coding:15:0")
	flash := flag.String("flash", "", "flash crowds layered on the arrival rate: comma-separated at:duration:factor entries, e.g. 60:120:3")
	diurnal := flag.Float64("diurnal", 0, "diurnal rate-swing amplitude in [0,1)")
	diurnalPeriod := flag.Float64("diurnal-period", 0, "diurnal period in seconds (0 = one day)")
	clientTimeout := flag.Float64("client-timeout", 0, "closed-loop client deadline in seconds (0 = open-loop clients)")
	clientRetries := flag.Int("client-retries", 0, "client retry budget after a timeout or shed")
	clientBackoff := flag.Float64("client-backoff", 0, "base retry backoff in seconds, doubling per attempt (0 = default 1)")
	clientBackoffCap := flag.Float64("client-backoff-cap", 0, "retry backoff ceiling in seconds (0 = default 30)")
	clientJitter := flag.Float64("client-jitter", 0, "multiplicative backoff jitter in [0,1)")
	ttftSLO := flag.Float64("ttft-slo", 0, "per-class TTFT SLO in seconds for closed-loop attainment accounting (0 = the option's TTFT limit)")
	admission := flag.String("admission", "none", "overload gate: none | priority | adaptive; plan mode also accepts auto (search all three)")
	queueLimit := flag.Int("queue-limit", 0, "admission outstanding-work threshold (required for -admission priority/adaptive)")
	minPriority := flag.Int("min-priority", 1, "-admission priority: arrivals below this priority shed at the limit")
	admissionLevels := flag.Int("admission-levels", 0, "-admission adaptive: priority band count (0 = default 4)")
	autoscale := flag.Bool("autoscale", false, "enable the elastic autoscaler: instances beyond the floor park and unpark under load")
	autoscaleHigh := flag.Float64("autoscale-high", 0, "scale up above this outstanding work per live instance (0 = default 8)")
	autoscaleLow := flag.Float64("autoscale-low", 0, "scale down below this outstanding work per live instance (0 = default 1)")
	autoscaleMin := flag.Int("autoscale-min", 0, "always-on instance floor (0 = default 1)")
	autoscaleWarmup := flag.Float64("autoscale-warmup", 0, "cold-start warm-up seconds before an unparked instance takes traffic (0 = default 30)")
	stragglerCV := flag.Float64("straggler-cv", 0, "persistent per-instance slow-factor coefficient of variation (0 = uniform instances)")
	stragglerTail := flag.String("straggler-tail", "gaussian", "straggler distribution shape: gaussian | exponential | lognormal")
	traceOut := flag.String("trace-out", "", "export sampled request timelines as Chrome trace_event JSON to this file (load in Perfetto; see docs/observability.md)")
	traceSamples := flag.Int("trace-samples", 0, "timeline reservoir capacity for -trace-out (0 = default 4096)")
	probeInterval := flag.Float64("probe-interval", 0, "sample windowed time-series probes every this many simulated seconds (required for -probe-out)")
	probeOut := flag.String("probe-out", "", "export time-series probes to this file (CSV, or JSON when the name ends in .json)")
	progress := flag.Bool("progress", false, "print a heartbeat (simulated time + completed requests) to stderr every few wall-clock seconds")
	explain := flag.Bool("explain", false, "plan mode: print the per-candidate decision trace (every sizing rung, why the winner won)")
	planTraceOut := flag.String("plan-trace", "", "plan mode: export the decision trace as JSON to this file")
	flag.Parse()

	gpu, ok := litegpu.GPUByName(*gpuName)
	if !ok {
		fatalf("unknown GPU %q", *gpuName)
	}
	m, ok := litegpu.ModelByName(*modelName)
	if !ok {
		fatalf("unknown model %q", *modelName)
	}
	makeGen := func(shape string, r float64, sd uint64) litegpu.Workload {
		switch shape {
		case "coding":
			return litegpu.CodingWorkload(r, sd)
		case "conversation":
			return litegpu.ConversationWorkload(r, sd)
		case "agent":
			return litegpu.AgentWorkload(r, sd)
		}
		fatalf("unknown workload %q", shape)
		panic("unreachable")
	}
	gen := makeGen(*workload, *rate, *seed)
	envelope := litegpu.WorkloadEnvelope{
		DiurnalAmplitude: *diurnal,
		DiurnalPeriod:    litegpu.Seconds(*diurnalPeriod),
	}
	if *flash != "" {
		for _, spec := range strings.Split(*flash, ",") {
			f := strings.Split(spec, ":")
			if len(f) != 3 {
				fatalf("bad -flash entry %q (want at:duration:factor)", spec)
			}
			at := parseF(f[0], "flash start")
			dur := parseF(f[1], "flash duration")
			fac := parseF(f[2], "flash factor")
			envelope.Flash = append(envelope.Flash, litegpu.FlashCrowd{
				At: litegpu.Seconds(at), Duration: litegpu.Seconds(dur), Factor: fac,
			})
		}
	}
	var multi *litegpu.MultiWorkload
	if *tenants != "" {
		mw := litegpu.MultiWorkload{Envelope: envelope, Seed: *seed}
		for _, spec := range strings.Split(*tenants, ",") {
			f := strings.Split(spec, ":")
			if len(f) != 4 {
				fatalf("bad -tenants entry %q (want name:workload:rate:priority)", spec)
			}
			r := parseF(f[2], "tenant rate")
			prio, err := strconv.Atoi(f[3])
			if err != nil {
				fatalf("bad tenant priority %q: %v", f[3], err)
			}
			mw.Classes = append(mw.Classes, litegpu.TenantClass{
				Name: f[0], Gen: makeGen(f[1], r, 0), Priority: prio,
			})
		}
		multi = &mw
	} else if envelope.Enabled() {
		// A single-tenant trace still takes the rate envelope by riding
		// through a one-class multi-tenant generator.
		multi = &litegpu.MultiWorkload{
			Classes:  []litegpu.TenantClass{{Name: *workload, Gen: gen}},
			Envelope: envelope,
			Seed:     *seed,
		}
	}
	failures := litegpu.ServeFailureConfig{}
	if *afr > 0 {
		failures = litegpu.ServeFailureConfig{
			Enabled:   true,
			Params:    litegpu.DefaultFailureParams(*afr),
			Spares:    *spares,
			TimeScale: *timescale,
			Seed:      *seed,
		}
		if *dropOnFailure {
			failures.Policy = litegpu.DropOnFailure
		}
	}
	var schedPolicies []litegpu.SchedulerPolicy
	if *scheduler == "auto" {
		if !*plan {
			fatalf("-scheduler auto only applies with -plan; pick static, continuous, or chunked")
		}
		schedPolicies = litegpu.SchedulerPolicies()
	} else {
		pol, err := litegpu.ParseSchedulerPolicy(*scheduler)
		if err != nil {
			fatalf("%v", err)
		}
		schedPolicies = []litegpu.SchedulerPolicy{pol}
	}
	parseFabric := func(spec string) litegpu.ServeNetworkConfig {
		nc, err := litegpu.ParseNetworkConfigWithLink(spec, *linkName)
		if err != nil {
			fatalf("%v", err)
		}
		return nc
	}
	var fabricCandidates []litegpu.ServeNetworkConfig
	var fabric litegpu.ServeNetworkConfig
	switch {
	case *fabricSpec == "auto":
		if !*plan {
			fatalf("-fabric auto only applies with -plan; pick one fabric spec")
		}
		fabricCandidates = litegpu.DefaultFabricCandidates()
	case strings.Contains(*fabricSpec, ","):
		if !*plan {
			fatalf("a -fabric candidate list only applies with -plan; pick one fabric spec")
		}
		for _, s := range strings.Split(*fabricSpec, ",") {
			fabricCandidates = append(fabricCandidates, parseFabric(s))
		}
	default:
		fabric = parseFabric(*fabricSpec)
	}
	// The latency stress knob applies uniformly, however the fabric
	// set was specified.
	if *latScale != 1 {
		fabric.LatencyScale = *latScale
		for i := range fabricCandidates {
			fabricCandidates[i].LatencyScale = *latScale
		}
	}
	parseKV := func(spec string) litegpu.ServeKVConfig {
		kc, err := litegpu.ParseKVConfig(spec)
		if err != nil {
			fatalf("%v", err)
		}
		return kc
	}
	var kvCandidates []litegpu.ServeKVConfig
	var kvc litegpu.ServeKVConfig
	switch {
	case *kvSpec == "auto":
		if !*plan {
			fatalf("-kv auto only applies with -plan; pick one kv spec")
		}
		kvCandidates = litegpu.DefaultKVPolicyCandidates()
	case strings.Contains(*kvSpec, ","):
		if !*plan {
			fatalf("a -kv candidate list only applies with -plan; pick one kv spec")
		}
		for _, s := range strings.Split(*kvSpec, ",") {
			kvCandidates = append(kvCandidates, parseKV(s))
		}
	default:
		kvc = parseKV(*kvSpec)
	}
	// The block knobs apply uniformly, however the kv set was
	// specified — but only to enabled configs (the zero config must
	// stay zero to keep its infinite-memory meaning).
	applyKVKnobs := func(c *litegpu.ServeKVConfig) {
		if !c.Enabled() {
			return
		}
		c.Blocks = *kvBlocks
		c.BlockTokens = *kvBlockTokens
	}
	applyKVKnobs(&kvc)
	for i := range kvCandidates {
		applyKVKnobs(&kvCandidates[i])
	}
	var client litegpu.ServeClientConfig
	if *clientTimeout > 0 {
		client = litegpu.ServeClientConfig{
			Default: litegpu.ClientBehavior{
				Timeout:     litegpu.Seconds(*clientTimeout),
				Retries:     *clientRetries,
				BackoffBase: litegpu.Seconds(*clientBackoff),
				BackoffCap:  litegpu.Seconds(*clientBackoffCap),
				Jitter:      *clientJitter,
				TTFTSLO:     litegpu.Seconds(*ttftSLO),
			},
			Seed: *seed,
		}
	}
	var admCandidates []litegpu.ServeAdmissionConfig
	var adm litegpu.ServeAdmissionConfig
	if *admission == "auto" {
		if !*plan {
			fatalf("-admission auto only applies with -plan; pick none, priority, or adaptive")
		}
		ql := *queueLimit
		if ql <= 0 {
			ql = 64
		}
		admCandidates = []litegpu.ServeAdmissionConfig{
			{},
			{Policy: litegpu.AdmitPriority, QueueLimit: ql, MinPriority: *minPriority},
			{Policy: litegpu.AdmitAdaptive, QueueLimit: ql, Levels: *admissionLevels},
		}
	} else {
		pol, err := litegpu.ParseAdmissionPolicy(*admission)
		if err != nil {
			fatalf("%v", err)
		}
		adm = litegpu.ServeAdmissionConfig{
			Policy: pol, QueueLimit: *queueLimit,
			MinPriority: *minPriority, Levels: *admissionLevels,
		}
		if pol == litegpu.AdmitAll {
			adm = litegpu.ServeAdmissionConfig{}
		}
	}
	var scale litegpu.ServeAutoscaleConfig
	if *autoscale {
		scale = litegpu.ServeAutoscaleConfig{
			Enabled:      true,
			HighWater:    *autoscaleHigh,
			LowWater:     *autoscaleLow,
			MinInstances: *autoscaleMin,
			WarmUp:       litegpu.Seconds(*autoscaleWarmup),
		}
	}
	var strag litegpu.ServeStragglerConfig
	if *stragglerCV > 0 {
		var tail litegpu.StragglerTail
		switch *stragglerTail {
		case "gaussian":
			tail = litegpu.StragglerGaussian
		case "exponential", "exp":
			tail = litegpu.StragglerExponential
		case "lognormal":
			tail = litegpu.StragglerLogNormal
		default:
			fatalf("unknown straggler tail %q (want gaussian, exponential, or lognormal)", *stragglerTail)
		}
		strag = litegpu.ServeStragglerConfig{
			Jitter: litegpu.StragglerJitter{CV: *stragglerCV, Tail: tail},
			Seed:   *seed,
		}
	}
	var routerPolicy litegpu.ServeRouterPolicy
	switch *router {
	case "rr", "round-robin":
		routerPolicy = litegpu.RoundRobin
	case "jsq", "join-shortest-queue":
		routerPolicy = litegpu.JoinShortestQueue
	default:
		fatalf("unknown router %q (want rr or jsq)", *router)
	}
	if *plan {
		if *secondGPU != "" {
			fatalf("-plan sizes a single homogeneous pool; it cannot be combined with -second-gpu")
		}
		if multi != nil {
			fatalf("-plan sizes against a single-tenant workload; -tenants, -flash, and -diurnal only apply without -plan")
		}
		// The spare count and router are planner outputs / serving-only
		// knobs: reject explicit settings rather than silently ignore.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "spares":
				fatalf("-plan searches the spare count itself (see -min-availability); -spares only applies without -plan")
			case "router", "drop-on-failure":
				fatalf("-%s only applies without -plan", f.Name)
			case "trace-out", "trace-samples", "probe-interval", "probe-out", "progress":
				fatalf("-%s instruments a serving run; it only applies without -plan (use -explain / -plan-trace for planner telemetry)", f.Name)
			}
		})
		slo := litegpu.CapacitySLO{
			TTFTAttainment:  *ttftAttain,
			TBTAttainment:   *tbtAttain,
			MinCompletion:   *minCompletion,
			MinAvailability: *minAvailability,
		}
		gen.Rate = *rate
		req := litegpu.CapacityRequest{
			GPU:             gpu,
			Model:           m,
			Opts:            litegpu.DefaultOptions(),
			Workload:        gen,
			Horizon:         litegpu.Seconds(*horizon),
			Schedulers:      schedPolicies,
			PrefillChunk:    *prefillChunk,
			MaxPrefillBatch: *maxPrefill,
			MaxDecodeBatch:  *maxDecode,
			MaxInstances:    *maxInstances,
			Failures:        failures,
			Network:         fabric,
			Fabrics:         fabricCandidates,
			KV:              kvc,
			KVPolicies:      kvCandidates,
			Client:          client,
			Admission:       adm,
			Admissions:      admCandidates,
			Autoscale:       scale,
			Straggler:       strag,
		}
		// The instance-count flags are what the planner searches over,
		// but an explicitly-set TP degree is a constraint to respect;
		// left unset, the planner picks the smallest degree that fits.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "prefill-gpus":
				req.PrefillGPUs = *prefillGPUs
			case "decode-gpus":
				req.DecodeGPUs = *decodeGPUs
			}
		})
		var ptrace *litegpu.PlanTrace
		if *explain || *planTraceOut != "" {
			ptrace = &litegpu.PlanTrace{}
			req.Trace = ptrace
		}
		p, err := litegpu.PlanCapacityRequest(req, slo)
		if err != nil && ptrace == nil {
			fatalf("plan: %v", err)
		}
		if ptrace != nil {
			// The decision trace exports even when no candidate was
			// feasible — that is exactly when "why rejected" matters.
			if *planTraceOut != "" {
				writeExport(*planTraceOut, ptrace.WriteJSON)
			}
			if *explain {
				fmt.Println("decision trace:")
				if werr := ptrace.Render(os.Stdout); werr != nil {
					fatalf("render decision trace: %v", werr)
				}
			}
			if err != nil {
				fatalf("plan: %v", err)
			}
		}
		c := p.Config
		fmt.Printf("capacity plan: %s serving %s at %.2f req/s (%s workload, seed %d)\n",
			gpu.Name, m.Name, *rate, *workload, *seed)
		spareNote := ""
		if p.Spares > 0 {
			spareNote = fmt.Sprintf(" + %d spares", p.Spares)
		}
		fmt.Printf("  deployment: %s%s = %d GPUs (%s scheduler)\n",
			describeDeployment(c), spareNote, p.TotalGPUs, c.Scheduler)
		fmt.Printf("  SLO check: TTFT attainment %.1f%% (target %.1f%%), TBT attainment %.1f%% (target %.1f%%)\n",
			p.Metrics.TTFTAttainment*100, *ttftAttain*100,
			p.Metrics.TBTAttainment*100, *tbtAttain*100)
		fmt.Printf("  completed %d/%d, dropped %d, tokens %d\n",
			p.Metrics.Completed, p.Metrics.Arrived, p.Metrics.Dropped, p.Metrics.TokensGenerated)
		if failures.Enabled {
			fmt.Printf("  reliability: %d hot spares for %.6f availability (target %.6f), blast radius %.1f%%\n",
				p.Spares, p.Availability, *minAvailability, p.Metrics.BlastRadius*100)
		}
		if p.Config.Admission.Policy != litegpu.AdmitAll {
			fmt.Printf("  admission: %s gate, queue limit %d (shed %d of %d)\n",
				p.Config.Admission.Policy, p.Config.Admission.QueueLimit, p.Metrics.Shed, p.Metrics.Arrived)
		}
		fmt.Printf("  fabric: %s (%s)\n", p.Fabric, p.Config.Network)
		if p.Config.Network.Enabled() && p.Metrics.NetTransfers > 0 {
			fmt.Printf("  network: %d transfers, p99 %.2f ms, %.1f%% of delivered latency\n",
				p.Metrics.NetTransfers, p.Metrics.TransferTime.P99*1e3, p.Metrics.NetworkBoundFraction*100)
		}
		if p.Config.KV.Enabled() {
			fmt.Printf("  kv memory: %s policy, %d preemptions, peak %d blocks (mean %.1f), hit rate %.1f%%, %d recomputed tokens\n",
				p.Config.KV, p.Metrics.KVPreemptions, p.Metrics.KVPeakBlocks, p.Metrics.KVMeanBlocks,
				p.Metrics.KVCacheHitRate*100, p.Metrics.KVRecomputeTokens)
		}
		fmt.Printf("  TCO: %v\n", p.Cost)
		return
	}

	if *explain || *planTraceOut != "" {
		fatalf("-explain and -plan-trace only apply with -plan")
	}
	if *probeOut != "" && *probeInterval <= 0 {
		fatalf("-probe-out needs a positive -probe-interval")
	}

	// Arrivals stream into the simulator on demand (identical to a
	// materialized trace, request for request), so even a huge
	// -rate × -horizon product runs in memory proportional to the
	// in-flight working set.
	var stream litegpu.RequestSource
	if multi != nil {
		ms, err := multi.Stream(litegpu.Seconds(*horizon))
		if err != nil {
			fatalf("generate workload: %v", err)
		}
		stream = ms
	} else {
		ts, err := gen.Stream(litegpu.Seconds(*horizon))
		if err != nil {
			fatalf("generate workload: %v", err)
		}
		stream = ts
	}

	cfg := litegpu.ServeConfig{
		GPU:              gpu,
		Model:            m,
		Opts:             litegpu.DefaultOptions(),
		Scheduler:        schedPolicies[0],
		PrefillChunk:     *prefillChunk,
		PrefillInstances: *prefillInst,
		PrefillGPUs:      *prefillGPUs,
		DecodeInstances:  *decodeInst,
		DecodeGPUs:       *decodeGPUs,
		MaxPrefillBatch:  *maxPrefill,
		MaxDecodeBatch:   *maxDecode,
		KV:               kvc,
		Client:           client,
		Admission:        adm,
		Autoscale:        scale,
		Straggler:        strag,
	}
	cc := litegpu.ServeClusterConfig{
		Pools:    []litegpu.ServePool{{Name: gpu.Name, Config: cfg}},
		Router:   routerPolicy,
		Failures: failures,
		Network:  fabric,
	}
	if *secondGPU != "" {
		g2, ok := litegpu.GPUByName(*secondGPU)
		if !ok {
			fatalf("unknown GPU %q", *secondGPU)
		}
		opts := litegpu.DefaultOptions()
		pTP, err := litegpu.MinFeasibleTP(g2, m, litegpu.Prefill, opts)
		if err != nil {
			fatalf("second pool: %v", err)
		}
		dTP, err := litegpu.MinFeasibleTP(g2, m, litegpu.Decode, opts)
		if err != nil {
			fatalf("second pool: %v", err)
		}
		cfg2 := cfg
		cfg2.GPU = g2
		cfg2.PrefillGPUs = pTP
		cfg2.DecodeGPUs = dTP
		cc.Pools = append(cc.Pools, litegpu.ServePool{Name: g2.Name, Config: cfg2})
	}

	// Observability: one Recorder sees the whole cluster (attaching it
	// is read-only — results are byte-identical with or without it).
	var recorder *litegpu.Observer
	if *traceOut != "" || *probeOut != "" || *progress {
		o := litegpu.ObserverOptions{
			Seed:          *seed,
			SampleTargets: *traceSamples,
			ProbeInterval: *probeInterval,
		}
		if *progress {
			start := time.Now()
			last := start
			o.Heartbeat = func(now float64, completed int64) {
				if time.Since(last) < 2*time.Second {
					return
				}
				last = time.Now()
				fmt.Fprintf(os.Stderr, "litegpu-serve: t=%.0fs simulated, %d completed (%.0fs elapsed)\n",
					now, completed, time.Since(start).Seconds())
			}
		}
		recorder = litegpu.NewObserver(o)
		cc.Observer = recorder
	}

	simStart := time.Now()
	cm, err := litegpu.ServeClusterFrom(cc, stream, litegpu.Seconds(*horizon)+120)
	if err != nil {
		fatalf("simulate: %v", err)
	}
	if *progress {
		fmt.Fprintf(os.Stderr, "litegpu-serve: done, %d completed in %.1fs wall\n",
			cm.Total.Completed, time.Since(simStart).Seconds())
	}

	if multi == nil {
		fmt.Printf("workload: %s @ %.2f req/s for %.0f s (seed %d)\n", *workload, *rate, *horizon, *seed)
	} else {
		fmt.Printf("workload: %d tenant classes for %.0f s (seed %d)\n", len(multi.Classes), *horizon, *seed)
	}
	if failures.Enabled {
		fmt.Printf("failure injection: AFR %.2f ×%.0f, %d spares/pool, policy %s\n",
			*afr, *timescale, *spares, map[bool]string{false: "requeue", true: "drop"}[*dropOnFailure])
	}
	if kvc.Enabled() {
		fmt.Printf("kv memory: %s policy, %d-token blocks\n", kvc, kvc.BlockTokensOrDefault())
	}
	if multi != nil && len(multi.Classes) > 1 {
		fmt.Printf("tenants: %s\n", *tenants)
	}
	if *clientTimeout > 0 {
		fmt.Printf("closed-loop clients: %.0fs deadline, %d retries\n", *clientTimeout, *clientRetries)
	}
	if adm.Policy != litegpu.AdmitAll {
		fmt.Printf("admission: %s gate, queue limit %d\n", adm.Policy, adm.QueueLimit)
	}
	for i, pm := range cm.Pools {
		pc := cc.Pools[i].Config // RunCluster reports pools in input order
		fmt.Printf("pool %s: %s (%s scheduler), model %s\n",
			pm.Name, describeDeployment(pc), pc.Scheduler, m.Name)
		printMetrics("  ", pm.Metrics, failures.Enabled, kvc.Enabled())
	}
	if len(cm.Pools) > 1 {
		fmt.Printf("cluster total (router %s):\n", *router)
		printMetrics("  ", cm.Total, failures.Enabled, kvc.Enabled())
	}
	if recorder != nil {
		if *traceOut != "" {
			writeExport(*traceOut, recorder.WriteTrace)
			held, seen := recorder.Sampled()
			fmt.Printf("timeline trace: %d of %d requests sampled → %s (load in Perfetto)\n", held, seen, *traceOut)
		}
		if *probeOut != "" {
			write := recorder.WriteProbesCSV
			if strings.HasSuffix(*probeOut, ".json") {
				write = recorder.WriteProbesJSON
			}
			writeExport(*probeOut, write)
			fmt.Printf("probes: %d samples at %.0fs intervals → %s\n", len(recorder.Probes()), *probeInterval, *probeOut)
		}
	}
}

// writeExport writes one telemetry artifact, dying with context on any
// filesystem error — a truncated trace is worse than no trace.
func writeExport(path string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fatalf("%v", err)
	}
	if err := write(f); err != nil {
		f.Close()
		fatalf("write %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		fatalf("close %s: %v", path, err)
	}
}

// describeDeployment renders a config's instance shape: the two phase
// pools for the static scheduler, the single colocated pool otherwise.
func describeDeployment(c litegpu.ServeConfig) string {
	if c.Scheduler.Colocated() {
		n, g := c.ColocatedShape()
		return fmt.Sprintf("%d×%d-GPU colocated", n, g)
	}
	return fmt.Sprintf("%d×%d-GPU prefill + %d×%d-GPU decode",
		c.PrefillInstances, c.PrefillGPUs, c.DecodeInstances, c.DecodeGPUs)
}

func printMetrics(indent string, mets litegpu.ServeMetrics, withFailures, withKV bool) {
	fmt.Printf("%sarrived %d, completed %d, dropped %d, tokens generated %d\n",
		indent, mets.Arrived, mets.Completed, mets.Dropped, mets.TokensGenerated)
	fmt.Printf("%sTTFT p50/p90/p99: %.0f / %.0f / %.0f ms (attainment %.1f%%)\n",
		indent, mets.TTFT.P50*1e3, mets.TTFT.P90*1e3, mets.TTFT.P99*1e3, mets.TTFTAttainment*100)
	fmt.Printf("%sTBT  p50/p90/p99: %.1f / %.1f / %.1f ms (attainment %.1f%%)\n",
		indent, mets.TBT.P50*1e3, mets.TBT.P90*1e3, mets.TBT.P99*1e3, mets.TBTAttainment*100)
	fmt.Printf("%sE2E  p50/p99: %.2f / %.2f s\n", indent, mets.E2E.P50, mets.E2E.P99)
	fmt.Printf("%sutilization: prefill %.1f%%, decode %.1f%%\n",
		indent, mets.PrefillUtilization*100, mets.DecodeUtilization*100)
	if withFailures {
		fmt.Printf("%sreliability: availability %.4f, %d failures, %d requeued, %d dropped-on-failure, goodput %.1f tok/s, blast radius %.1f%%\n",
			indent, mets.Availability, mets.FailureEvents, mets.Requeued, mets.DroppedOnFailure,
			mets.Goodput, mets.BlastRadius*100)
	}
	if mets.NetTransfers > 0 {
		fmt.Printf("%snetwork: %d transfers, %.1f MB p50 / %.1f MB p99, %.2f / %.2f ms p50/p99, %.1f%% of delivered latency\n",
			indent, mets.NetTransfers,
			mets.TransferBytes.P50/1e6, mets.TransferBytes.P99/1e6,
			mets.TransferTime.P50*1e3, mets.TransferTime.P99*1e3,
			mets.NetworkBoundFraction*100)
	}
	if withKV {
		fmt.Printf("%skv memory: %d preemptions, peak %d blocks (mean %.1f), hit rate %.1f%%, %d recomputed tokens\n",
			indent, mets.KVPreemptions, mets.KVPeakBlocks, mets.KVMeanBlocks,
			mets.KVCacheHitRate*100, mets.KVRecomputeTokens)
	}
	if mets.ClientTimeouts+mets.ClientRetries+mets.Abandoned+mets.Shed > 0 {
		fmt.Printf("%soverload: %d timeouts, %d retries, %d abandoned, %d shed; useful goodput %.1f tok/s\n",
			indent, mets.ClientTimeouts, mets.ClientRetries, mets.Abandoned, mets.Shed, mets.UsefulGoodput)
	}
	if mets.ScaleUps+mets.ScaleDowns > 0 {
		fmt.Printf("%sautoscaler: %d scale-ups, %d scale-downs, mean live instances %.2f\n",
			indent, mets.ScaleUps, mets.ScaleDowns, mets.MeanLiveInstances)
	}
	for _, c := range mets.Classes {
		fmt.Printf("%sclass %d: arrived %d, completed %d, shed %d, abandoned %d, TTFT attainment %.1f%%, goodput %.1f tok/s\n",
			indent, c.Class, c.Arrived, c.Completed, c.Shed, c.Abandoned, c.TTFTAttainment*100, c.Goodput)
	}
}

// parseF parses a float flag component or dies with context.
func parseF(s, what string) float64 {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		fatalf("bad %s %q: %v", what, s, err)
	}
	return v
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "litegpu-serve: "+format+"\n", args...)
	os.Exit(1)
}
