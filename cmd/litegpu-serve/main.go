// Command litegpu-serve runs the discrete-event LLM serving simulator
// with Splitwise-style phase splitting on a synthetic workload.
//
// Usage:
//
//	litegpu-serve [flags]
//
// Example: compare an H100 deployment with its Lite-GPU replacement:
//
//	litegpu-serve -gpu H100 -model Llama3-70B -prefill-gpus 2 -decode-gpus 2
//	litegpu-serve -gpu Lite -model Llama3-70B -prefill-gpus 8 -decode-gpus 8
//
// With -plan, the instance-count flags are ignored (they are what the
// planner searches over) and the capacity planner sizes the cheapest
// deployment meeting the SLO targets instead; -horizon, the batch caps,
// and explicitly-set -prefill-gpus/-decode-gpus TP degrees are honored:
//
//	litegpu-serve -plan -gpu Lite -model Llama3-8B -rate 20 -ttft-attainment 0.99
package main

import (
	"flag"
	"fmt"
	"os"

	"litegpu"
)

func main() {
	gpuName := flag.String("gpu", "H100", "GPU type (a Table 1 name)")
	modelName := flag.String("model", "Llama3-70B", "model preset")
	rate := flag.Float64("rate", 1.2, "request arrival rate (req/s)")
	horizon := flag.Float64("horizon", 300, "simulated seconds")
	seed := flag.Uint64("seed", 42, "workload seed")
	prefillInst := flag.Int("prefill-instances", 2, "prefill engine count")
	prefillGPUs := flag.Int("prefill-gpus", 2, "GPUs (TP degree) per prefill engine")
	decodeInst := flag.Int("decode-instances", 1, "decode engine count")
	decodeGPUs := flag.Int("decode-gpus", 2, "GPUs (TP degree) per decode engine")
	maxPrefill := flag.Int("max-prefill-batch", 4, "prompts fused per prefill pass")
	maxDecode := flag.Int("max-decode-batch", 64, "continuous-batching cap")
	workload := flag.String("workload", "coding", "workload shape: coding | conversation")
	plan := flag.Bool("plan", false, "size the cheapest deployment meeting the SLO targets instead of simulating fixed pools")
	ttftAttain := flag.Float64("ttft-attainment", 0.99, "plan mode: required fraction of requests meeting the TTFT limit")
	tbtAttain := flag.Float64("tbt-attainment", 0.99, "plan mode: required fraction of requests meeting the TBT limit")
	minCompletion := flag.Float64("min-completion", 0.95, "plan mode: required fraction of arrived requests completing")
	maxInstances := flag.Int("max-instances", 64, "plan mode: per-pool instance-count search ceiling")
	flag.Parse()

	gpu, ok := litegpu.GPUByName(*gpuName)
	if !ok {
		fatalf("unknown GPU %q", *gpuName)
	}
	m, ok := litegpu.ModelByName(*modelName)
	if !ok {
		fatalf("unknown model %q", *modelName)
	}
	var gen litegpu.Workload
	switch *workload {
	case "coding":
		gen = litegpu.CodingWorkload(*rate, *seed)
	case "conversation":
		gen = litegpu.ConversationWorkload(*rate, *seed)
	default:
		fatalf("unknown workload %q", *workload)
	}
	if *plan {
		slo := litegpu.CapacitySLO{
			TTFTAttainment: *ttftAttain,
			TBTAttainment:  *tbtAttain,
			MinCompletion:  *minCompletion,
		}
		gen.Rate = *rate
		req := litegpu.CapacityRequest{
			GPU:             gpu,
			Model:           m,
			Opts:            litegpu.DefaultOptions(),
			Workload:        gen,
			Horizon:         litegpu.Seconds(*horizon),
			MaxPrefillBatch: *maxPrefill,
			MaxDecodeBatch:  *maxDecode,
			MaxInstances:    *maxInstances,
		}
		// The instance-count flags are what the planner searches over,
		// but an explicitly-set TP degree is a constraint to respect;
		// left unset, the planner picks the smallest degree that fits.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "prefill-gpus":
				req.PrefillGPUs = *prefillGPUs
			case "decode-gpus":
				req.DecodeGPUs = *decodeGPUs
			}
		})
		p, err := litegpu.PlanCapacityRequest(req, slo)
		if err != nil {
			fatalf("plan: %v", err)
		}
		c := p.Config
		fmt.Printf("capacity plan: %s serving %s at %.2f req/s (%s workload, seed %d)\n",
			gpu.Name, m.Name, *rate, *workload, *seed)
		fmt.Printf("  deployment: %d×%d-GPU prefill + %d×%d-GPU decode = %d GPUs\n",
			c.PrefillInstances, c.PrefillGPUs, c.DecodeInstances, c.DecodeGPUs, p.TotalGPUs)
		fmt.Printf("  SLO check: TTFT attainment %.1f%% (target %.1f%%), TBT attainment %.1f%% (target %.1f%%)\n",
			p.Metrics.TTFTAttainment*100, *ttftAttain*100,
			p.Metrics.TBTAttainment*100, *tbtAttain*100)
		fmt.Printf("  completed %d/%d, dropped %d, tokens %d\n",
			p.Metrics.Completed, p.Metrics.Arrived, p.Metrics.Dropped, p.Metrics.TokensGenerated)
		fmt.Printf("  TCO: %v\n", p.Cost)
		return
	}

	reqs, err := gen.Generate(litegpu.Seconds(*horizon))
	if err != nil {
		fatalf("generate workload: %v", err)
	}

	cfg := litegpu.ServeConfig{
		GPU:              gpu,
		Model:            m,
		Opts:             litegpu.DefaultOptions(),
		PrefillInstances: *prefillInst,
		PrefillGPUs:      *prefillGPUs,
		DecodeInstances:  *decodeInst,
		DecodeGPUs:       *decodeGPUs,
		MaxPrefillBatch:  *maxPrefill,
		MaxDecodeBatch:   *maxDecode,
	}
	mets, err := litegpu.Serve(cfg, reqs, litegpu.Seconds(*horizon)+120)
	if err != nil {
		fatalf("simulate: %v", err)
	}

	fmt.Printf("deployment: %s × (%d×%d prefill + %d×%d decode), model %s\n",
		gpu.Name, *prefillInst, *prefillGPUs, *decodeInst, *decodeGPUs, m.Name)
	fmt.Printf("workload: %s @ %.2f req/s for %.0f s (seed %d)\n", *workload, *rate, *horizon, *seed)
	fmt.Printf("arrived %d, completed %d, dropped %d, tokens generated %d\n",
		mets.Arrived, mets.Completed, mets.Dropped, mets.TokensGenerated)
	fmt.Printf("TTFT p50/p90/p99: %.0f / %.0f / %.0f ms (attainment %.1f%%)\n",
		mets.TTFT.P50*1e3, mets.TTFT.P90*1e3, mets.TTFT.P99*1e3, mets.TTFTAttainment*100)
	fmt.Printf("TBT  p50/p90/p99: %.1f / %.1f / %.1f ms (attainment %.1f%%)\n",
		mets.TBT.P50*1e3, mets.TBT.P90*1e3, mets.TBT.P99*1e3, mets.TBTAttainment*100)
	fmt.Printf("E2E  p50/p99: %.2f / %.2f s\n", mets.E2E.P50, mets.E2E.P99)
	fmt.Printf("utilization: prefill %.1f%%, decode %.1f%%\n",
		mets.PrefillUtilization*100, mets.DecodeUtilization*100)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "litegpu-serve: "+format+"\n", args...)
	os.Exit(1)
}
