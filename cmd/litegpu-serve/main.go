// Command litegpu-serve runs the discrete-event LLM serving simulator
// with Splitwise-style phase splitting on a synthetic workload.
//
// Usage:
//
//	litegpu-serve [flags]
//
// Example: compare an H100 deployment with its Lite-GPU replacement:
//
//	litegpu-serve -gpu H100 -model Llama3-70B -prefill-gpus 2 -decode-gpus 2
//	litegpu-serve -gpu Lite -model Llama3-70B -prefill-gpus 8 -decode-gpus 8
package main

import (
	"flag"
	"fmt"
	"os"

	"litegpu"
)

func main() {
	gpuName := flag.String("gpu", "H100", "GPU type (a Table 1 name)")
	modelName := flag.String("model", "Llama3-70B", "model preset")
	rate := flag.Float64("rate", 1.2, "request arrival rate (req/s)")
	horizon := flag.Float64("horizon", 300, "simulated seconds")
	seed := flag.Uint64("seed", 42, "workload seed")
	prefillInst := flag.Int("prefill-instances", 2, "prefill engine count")
	prefillGPUs := flag.Int("prefill-gpus", 2, "GPUs (TP degree) per prefill engine")
	decodeInst := flag.Int("decode-instances", 1, "decode engine count")
	decodeGPUs := flag.Int("decode-gpus", 2, "GPUs (TP degree) per decode engine")
	maxPrefill := flag.Int("max-prefill-batch", 4, "prompts fused per prefill pass")
	maxDecode := flag.Int("max-decode-batch", 64, "continuous-batching cap")
	workload := flag.String("workload", "coding", "workload shape: coding | conversation")
	flag.Parse()

	gpu, ok := litegpu.GPUByName(*gpuName)
	if !ok {
		fatalf("unknown GPU %q", *gpuName)
	}
	m, ok := litegpu.ModelByName(*modelName)
	if !ok {
		fatalf("unknown model %q", *modelName)
	}
	var gen litegpu.Workload
	switch *workload {
	case "coding":
		gen = litegpu.CodingWorkload(*rate, *seed)
	case "conversation":
		gen = litegpu.ConversationWorkload(*rate, *seed)
	default:
		fatalf("unknown workload %q", *workload)
	}
	reqs, err := gen.Generate(litegpu.Seconds(*horizon))
	if err != nil {
		fatalf("generate workload: %v", err)
	}

	cfg := litegpu.ServeConfig{
		GPU:              gpu,
		Model:            m,
		Opts:             litegpu.DefaultOptions(),
		PrefillInstances: *prefillInst,
		PrefillGPUs:      *prefillGPUs,
		DecodeInstances:  *decodeInst,
		DecodeGPUs:       *decodeGPUs,
		MaxPrefillBatch:  *maxPrefill,
		MaxDecodeBatch:   *maxDecode,
	}
	mets, err := litegpu.Serve(cfg, reqs, litegpu.Seconds(*horizon)+120)
	if err != nil {
		fatalf("simulate: %v", err)
	}

	fmt.Printf("deployment: %s × (%d×%d prefill + %d×%d decode), model %s\n",
		gpu.Name, *prefillInst, *prefillGPUs, *decodeInst, *decodeGPUs, m.Name)
	fmt.Printf("workload: %s @ %.2f req/s for %.0f s (seed %d)\n", *workload, *rate, *horizon, *seed)
	fmt.Printf("arrived %d, completed %d, tokens generated %d\n",
		mets.Arrived, mets.Completed, mets.TokensGenerated)
	fmt.Printf("TTFT p50/p90/p99: %.0f / %.0f / %.0f ms (attainment %.1f%%)\n",
		mets.TTFT.P50*1e3, mets.TTFT.P90*1e3, mets.TTFT.P99*1e3, mets.TTFTAttainment*100)
	fmt.Printf("TBT  p50/p90/p99: %.1f / %.1f / %.1f ms (attainment %.1f%%)\n",
		mets.TBT.P50*1e3, mets.TBT.P90*1e3, mets.TBT.P99*1e3, mets.TBTAttainment*100)
	fmt.Printf("E2E  p50/p99: %.2f / %.2f s\n", mets.E2E.P50, mets.E2E.P99)
	fmt.Printf("utilization: prefill %.1f%%, decode %.1f%%\n",
		mets.PrefillUtilization*100, mets.DecodeUtilization*100)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "litegpu-serve: "+format+"\n", args...)
	os.Exit(1)
}
