package litegpu

import (
	"math"
	"testing"
)

func TestYieldStudyFacade(t *testing.T) {
	rows := YieldStudy()
	if len(rows) != 5 {
		t.Fatalf("yield rows = %d", len(rows))
	}
	if rows[2].Fraction != 0.25 || rows[2].YieldGain < 1.7 {
		t.Errorf("quarter-die row wrong: %+v", rows[2])
	}
}

func TestShorelineStudyFacade(t *testing.T) {
	rows := ShorelineStudy()
	if len(rows) != 5 || rows[2].Gain != 2 {
		t.Errorf("shoreline rows wrong: %+v", rows)
	}
}

func TestSimulateAvailabilityFacade(t *testing.T) {
	a := SimulateAvailability(Lite(), 32, 1, 10, 100, 42)
	if a.Analytic < 0.999 {
		t.Errorf("analytic availability = %v", a.Analytic)
	}
	if math.Abs(a.Analytic-a.Simulated) > 0.01 {
		t.Errorf("simulated %v far from analytic %v", a.Simulated, a.Analytic)
	}
	if a.BlastRadius != 1.0/32 {
		t.Errorf("blast radius = %v", a.BlastRadius)
	}
	if a.FailuresPerMission <= 0 {
		t.Error("no failures recorded over a 10-year mission")
	}
}

func TestPowerAtLoadFacade(t *testing.T) {
	r := PowerAtLoad(H100(), 4, 0.1)
	if r.Saving <= 0.2 {
		t.Errorf("10%% load saving = %v, want > 0.2", r.Saving)
	}
	if r.LiteWatts >= r.BigWatts {
		t.Error("Lite group should win at 10% load")
	}
}

func TestGPUAnnualFailureRateFacade(t *testing.T) {
	h := GPUAnnualFailureRate(H100())
	l := GPUAnnualFailureRate(Lite())
	if l >= h {
		t.Errorf("Lite AFR (%v) should be below H100 (%v)", l, h)
	}
	if h < 0.01 || h > 0.2 {
		t.Errorf("H100 AFR = %v, implausible", h)
	}
}
