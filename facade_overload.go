package litegpu

import (
	"litegpu/internal/serve"
	"litegpu/internal/straggler"
	"litegpu/internal/trace"
)

// Overload robustness: multi-tenant workloads, closed-loop clients,
// admission control, elastic autoscaling, and persistent stragglers.
// See docs/workloads.md for the model and when each knob matters.
type (
	// TenantClass is one tenant population of a multi-tenant workload:
	// a named generator plus the scheduling priority its requests carry.
	TenantClass = trace.TenantClass
	// MultiWorkload interleaves several tenant classes into one
	// arrival-ordered stream, optionally shaped by a rate envelope.
	MultiWorkload = trace.MultiGenerator
	// WorkloadEnvelope shapes arrival rates over time: a diurnal
	// sinusoid plus transient flash crowds. The zero value is flat.
	WorkloadEnvelope = trace.Envelope
	// FlashCrowd is one transient arrival surge inside an envelope.
	FlashCrowd = trace.FlashCrowd

	// ClientBehavior is one request class's closed-loop patience:
	// deadline, retry budget, capped-exponential backoff, jitter, and
	// TTFT SLO.
	ClientBehavior = serve.ClientBehavior
	// ServeClientConfig attaches closed-loop clients to a serving
	// simulation: per-class behaviors, a seeded backoff RNG, and the
	// ObserveOnly open-loop baseline switch. The zero value keeps the
	// historical open-loop clients.
	ServeClientConfig = serve.ClientConfig

	// AdmissionPolicy selects how a pool sheds load under overload
	// (none | priority | adaptive).
	AdmissionPolicy = serve.AdmissionPolicy
	// ServeAdmissionConfig is a pool's load-shedding gate. The zero
	// value admits everything.
	ServeAdmissionConfig = serve.AdmissionConfig

	// ServeAutoscaleConfig is a pool's elastic control loop: instances
	// beyond the floor start parked and warm up under load. The zero
	// value keeps the whole fleet always on.
	ServeAutoscaleConfig = serve.AutoscaleConfig

	// ServeStragglerConfig gives each simulated instance a persistent
	// step-time slow factor drawn at construction. The zero value keeps
	// instances uniform.
	ServeStragglerConfig = serve.StragglerConfig
	// StragglerJitter parameterizes the straggler distribution (CV and
	// tail shape); it is shared with the gang-slowdown studies.
	StragglerJitter = straggler.Jitter
	// StragglerTail selects the straggler distribution shape.
	StragglerTail = straggler.Tail

	// ClassMetrics is the per-tenant-class slice of ServeMetrics.
	ClassMetrics = serve.ClassMetrics
)

// The three admission policies.
const (
	// AdmitAll queues every arrival (the default).
	AdmitAll = serve.AdmitAll
	// AdmitPriority sheds arrivals below MinPriority at the queue limit.
	AdmitPriority = serve.AdmitPriority
	// AdmitAdaptive sheds the lowest priority tiers first, scaling each
	// tier's queue-depth threshold with its rank.
	AdmitAdaptive = serve.AdmitAdaptive
)

// The straggler tail shapes.
const (
	// StragglerGaussian is light-tailed jitter (clock/thermal noise).
	StragglerGaussian = straggler.Gaussian
	// StragglerExponential is heavier-tailed (interference, ECC retries).
	StragglerExponential = straggler.Exponential
	// StragglerLogNormal models occasional long stalls.
	StragglerLogNormal = straggler.LogNormal
)

// ParseAdmissionPolicy maps a CLI name (none | priority | adaptive) to
// its AdmissionPolicy.
func ParseAdmissionPolicy(name string) (AdmissionPolicy, error) {
	return serve.ParseAdmissionPolicy(name)
}

// AdmissionPolicies returns the admission policies in definition order.
func AdmissionPolicies() []AdmissionPolicy { return serve.AdmissionPolicies() }
