// Package litegpu is a modeling and simulation toolkit for exploring
// Lite-GPU AI clusters — datacenter designs that replace large multi-die
// GPU packages with many small single-die GPUs connected by co-packaged
// optics, as proposed in "Good things come in small packages: Should we
// build AI clusters with Lite-GPUs?" (HotOS 2025).
//
// The package exposes the toolkit's public API as a façade over the
// internal model packages:
//
//   - catalogs of GPU configurations (Table 1) and transformer models,
//   - DesignCluster, which derives the full hardware story of replacing
//     one big GPU with a group of Lite-GPUs (yield, cost, shoreline,
//     cooling, reliability),
//   - the Figure 3 roofline studies (PrefillStudy, DecodeStudy) and the
//     single-configuration Estimate,
//   - the discrete-event serving simulator (Serve) and workload
//     generators, built on the shared internal/sim event engine, with a
//     pluggable scheduling discipline per pool (SchedulerPolicy: the
//     paper's static phase split, continuous batching, or chunked
//     prefill), GPU failure injection with hot spares (ServeCluster,
//     ServeWithFailures), heterogeneous pools behind a pluggable
//     router (RoundRobin, JoinShortestQueue), and an optional
//     network-in-the-loop fabric (ServeNetworkConfig: KV-cache
//     handoffs and routing ingress become real transfers with port
//     contention, packet vs circuit switching, and path latency),
//   - the concurrent design-space sweep (Sweep), which crosses Table 1
//     GPU types × models × workloads × arrival rates × scheduling
//     policies over a worker pool and returns serving metrics per cell,
//   - the capacity planner (PlanCapacity), which binary-searches
//     instance counts over the serving simulator until the TTFT/TBT
//     attainment targets hold, returning the cheapest feasible
//     deployment — across scheduling policies and fabric designs when
//     asked — with a TCO ($/Mtoken) readout,
//   - the Section 2/3 claim studies (Yield, Shoreline, Network, Power,
//     BlastRadius, Granularity).
//
// All stochastic entry points take explicit seeds; every result is
// reproducible byte-for-byte — parallel sweeps derive per-cell seeds
// from the cell's grid index, so results are identical at any
// GOMAXPROCS.
package litegpu

import (
	"fmt"
	"io"

	"litegpu/internal/die"
	"litegpu/internal/experiments"
	"litegpu/internal/failure"
	"litegpu/internal/hw"
	"litegpu/internal/inference"
	"litegpu/internal/model"
	"litegpu/internal/network"
	"litegpu/internal/power"
	"litegpu/internal/serve"
	"litegpu/internal/trace"
	"litegpu/internal/units"
)

// Core types, re-exported for the public API surface.
type (
	// GPU is a GPU package specification (see Table 1 of the paper).
	GPU = hw.GPU
	// Transformer is a decoder-only LLM architecture.
	Transformer = model.Transformer
	// Precision sets bytes per weight/KV/activation element.
	Precision = model.Precision
	// Phase selects prefill or decode.
	Phase = inference.Phase
	// Options parameterizes the roofline studies.
	Options = inference.Options
	// Estimate is a modeled configuration result.
	Estimate = inference.Estimate
	// ServeConfig describes a serving deployment (GPU type, model,
	// scheduler policy, instance shape, batch caps).
	ServeConfig = serve.Config
	// ServeMetrics summarizes a serving simulation.
	ServeMetrics = serve.Metrics
	// SchedulerPolicy selects a pool's serving discipline: the paper's
	// static phase split, continuous batching, or chunked prefill.
	SchedulerPolicy = serve.SchedulerPolicy
	// Workload generates synthetic request streams.
	Workload = trace.Generator
	// Request is one inference request.
	Request = trace.Request
	// RequestStream yields a workload's arrivals one at a time (see
	// Workload.Stream): the constant-memory alternative to Generate for
	// million-request horizons.
	RequestStream = trace.Stream
	// RequestSource is the lazy request feed the streaming serve entry
	// points consume; *RequestStream implements it. Custom sources must
	// yield requests in nondecreasing arrival order — an out-of-order
	// arrival panics with a diagnostic, since it would corrupt
	// simulated causality.
	RequestSource = serve.RequestSource
	// Figure3Row is one bar of a Figure 3 panel.
	Figure3Row = experiments.Figure3Row
	// Seconds is a duration in seconds.
	Seconds = units.Seconds
)

// The two inference phases.
const (
	Prefill = inference.Prefill
	Decode  = inference.Decode
)

// The three scheduling policies.
const (
	// StaticDisaggregated is the paper's Splitwise-style phase split
	// (the default).
	StaticDisaggregated = serve.StaticDisaggregated
	// ContinuousBatching colocates both phases per instance, refilling
	// freed batch slots every iteration (vLLM/Orca style).
	ContinuousBatching = serve.ContinuousBatching
	// ChunkedPrefill adds Sarathi-style prompt chunking to continuous
	// batching, bounding decode stalls by the chunk size.
	ChunkedPrefill = serve.ChunkedPrefill
)

// ParseSchedulerPolicy maps a CLI name (static | continuous | chunked)
// to its SchedulerPolicy.
func ParseSchedulerPolicy(name string) (SchedulerPolicy, error) {
	return serve.ParseSchedulerPolicy(name)
}

// SchedulerPolicies returns all three scheduling policies in
// definition order.
func SchedulerPolicies() []SchedulerPolicy { return serve.SchedulerPolicies() }

// Catalog -------------------------------------------------------------------

// H100 returns the paper's baseline GPU.
func H100() GPU { return hw.H100() }

// Lite returns the basic quarter-scale Lite-GPU.
func Lite() GPU { return hw.Lite() }

// Table1 returns all six paper configurations.
func Table1() []GPU { return hw.Table1() }

// GPUByName looks up a Table 1 configuration.
func GPUByName(name string) (GPU, bool) { return hw.ByName(name) }

// Models returns the three models evaluated in the paper.
func Models() []Transformer { return model.PaperModels() }

// ModelByName looks up a model preset (including Llama3-8B).
func ModelByName(name string) (Transformer, bool) { return model.ByName(name) }

// DefaultOptions returns the paper's study parameters (FP8, 1500-token
// prompts, TTFT ≤ 1 s, TBT ≤ 50 ms).
func DefaultOptions() Options { return inference.DefaultOptions() }

// MinFeasibleTP returns the smallest tensor-parallel degree at which
// the model fits the GPU type for the given phase — the auto-sizing
// rule the sweep and the capacity planner use.
func MinFeasibleTP(gpu GPU, m Transformer, phase Phase, opts Options) (int, error) {
	return inference.MinFeasibleTP(gpu, m, phase, opts)
}

// FailureParams calibrates GPU failure and repair processes (see
// internal/failure).
type FailureParams = failure.Params

// DefaultFailureParams returns the studies' reliability calibration,
// optionally overriding the reference-package AFR (refAFR ≤ 0 keeps the
// default 5%).
func DefaultFailureParams(refAFR float64) FailureParams {
	p := failure.DefaultParams()
	if refAFR > 0 {
		p.RefAFR = refAFR
	}
	return p
}

// Cluster design --------------------------------------------------------------

// Design is the derived hardware story of replacing one big GPU with
// `Split` Lite-GPUs.
type Design struct {
	Parent GPU
	Lite   GPU
	Split  int

	// ShorelineGain is the total-perimeter (bandwidth-to-compute)
	// multiplier: √Split.
	ShorelineGain float64
	// YieldGain is the die-yield multiplier of the smaller die.
	YieldGain float64
	// SiliconCostSaving is the fractional silicon cost saving per unit
	// of compute.
	SiliconCostSaving float64
	// PackageCostSaving includes packaging and test.
	PackageCostSaving float64
	// Cooling is the cooling class one Lite package needs.
	Cooling power.Cooling
	// OverclockHeadroom is the sustained clock factor that cooling
	// allows.
	OverclockHeadroom float64
	// AvailabilityGain is instance availability with one spare Lite-GPU
	// minus availability of the parent instance with no spare, for an
	// 8-parent-GPU instance.
	AvailabilityGain float64
	// CircuitEnergyAdvantage is the fabric J/bit saving of circuit over
	// packet switching at the replacement cluster's scale.
	CircuitEnergyAdvantage float64
}

// DesignCluster derives the Lite-GPU replacement design for a parent GPU
// split `split` ways. Split must be at least 2.
func DesignCluster(parent GPU, split int) Design {
	if split < 2 {
		panic("litegpu: DesignCluster requires split ≥ 2")
	}
	lite := parent.Scale(1 / float64(split)).
		WithName(fmt.Sprintf("Lite(%s/%d)", parent.Name, split))
	cm := die.DefaultCostModel()
	pm := power.Default()
	frac := 1 / float64(split)
	cooling, _ := power.Required(lite)

	fp := failure.DefaultParams()
	instance := 8
	bigAvail := failure.AnalyticAvailability(failure.Spec{GPU: parent, InstanceGPUs: instance}, fp)
	liteAvail := failure.AnalyticAvailability(failure.Spec{
		GPU: lite, InstanceGPUs: instance * split, Spares: 1,
	}, fp)

	return Design{
		Parent:                 parent,
		Lite:                   lite,
		Split:                  split,
		ShorelineGain:          die.ShorelineGain(split),
		YieldGain:              die.YieldGain(cm.Yield, parent.DieArea, frac),
		SiliconCostSaving:      cm.SiliconCostReduction(parent.DieArea, frac),
		PackageCostSaving:      cm.CostReduction(parent.DieArea, frac),
		Cooling:                cooling,
		OverclockHeadroom:      pm.OverclockHeadroom(lite, cooling),
		AvailabilityGain:       liteAvail - bigAvail,
		CircuitEnergyAdvantage: network.CircuitEnergyAdvantage(instance*split, network.CoPackagedOptics()),
	}
}

// Roofline studies ------------------------------------------------------------

// Estimate models one (GPU, model, phase, cluster-size, batch)
// configuration with the paper's roofline methodology.
func EstimateConfig(gpu GPU, m Transformer, phase Phase, gpus, batch int, opts Options) (Estimate, error) {
	return inference.Run(gpu, m, phase, gpus, batch, opts)
}

// SearchBest sweeps batch sizes and GPU counts and returns the
// configuration with the highest tokens/s/SM under the phase's SLO.
func SearchBest(gpu GPU, m Transformer, phase Phase, opts Options) (Estimate, error) {
	res, err := inference.Search(gpu, m, phase, opts)
	if err != nil {
		return Estimate{}, err
	}
	return res.Best, nil
}

// PrefillStudy reproduces Figure 3a.
func PrefillStudy(opts Options) ([]Figure3Row, error) { return experiments.Figure3a(opts) }

// DecodeStudy reproduces Figure 3b.
func DecodeStudy(opts Options) ([]Figure3Row, error) { return experiments.Figure3b(opts) }

// Serving ----------------------------------------------------------------------

// Serve runs the discrete-event serving simulator over the request
// stream until the horizon.
func Serve(cfg ServeConfig, reqs []Request, horizon Seconds) (ServeMetrics, error) {
	return serve.Run(cfg, reqs, horizon)
}

// ServeFrom is Serve over a lazy request source (typically a
// Workload.Stream): arrivals are generated on demand and only the
// in-flight working set is held in memory, so million-request horizons
// run in O(in-flight) space with byte-identical metrics.
func ServeFrom(cfg ServeConfig, src RequestSource, horizon Seconds) (ServeMetrics, error) {
	return serve.RunFrom(cfg, src, horizon)
}

// CodingWorkload returns the paper's production-coding workload shape
// (median prompt 1500 tokens) at the given request rate.
func CodingWorkload(rate float64, seed uint64) Workload {
	return trace.CodingWorkload(rate, seed)
}

// ConversationWorkload returns a chat-style workload.
func ConversationWorkload(rate float64, seed uint64) Workload {
	return trace.ConversationWorkload(rate, seed)
}

// AgentWorkload returns an agentic workload: long prompts sharing one
// of a few long common prefixes (system prompt plus tool schemas), the
// shape that makes KV prefix caching pay off.
func AgentWorkload(rate float64, seed uint64) Workload {
	return trace.AgentWorkload(rate, seed)
}

// Reports ----------------------------------------------------------------------

// WriteReport renders every table, figure, and claim study to w — the
// same output the litegpu-figures binary produces with `all`.
func WriteReport(w io.Writer, seed uint64) error {
	experiments.RenderTable1(w)
	experiments.RenderFigure1(w)
	experiments.RenderFigure2(w)
	opts := inference.DefaultOptions()
	fa, err := experiments.Figure3a(opts)
	if err != nil {
		return err
	}
	experiments.RenderFigure3(w, "Figure 3a: prompt prefill (normalized tokens/s/SM)", fa)
	fb, err := experiments.Figure3b(opts)
	if err != nil {
		return err
	}
	experiments.RenderFigure3(w, "Figure 3b: decode (normalized tokens/s/SM)", fb)
	experiments.RenderYieldStudy(w)
	experiments.RenderShorelineStudy(w)
	experiments.RenderNetworkStudy(w, 512)
	experiments.RenderPowerStudy(w)
	experiments.RenderBlastRadiusStudy(w, seed)
	experiments.RenderGranularity(w, seed)
	experiments.RenderTCOStudy(w)
	experiments.RenderStragglerStudy(w, seed)
	experiments.RenderMemoryStudy(w)
	if err := experiments.RenderTrainingStudy(w); err != nil {
		return err
	}
	if err := experiments.RenderServingStudy(w, seed); err != nil {
		return err
	}
	return experiments.RenderServingGrid(w, seed)
}
