package litegpu

import (
	"bytes"
	"strings"
	"testing"
)

func TestCatalog(t *testing.T) {
	if H100().Name != "H100" || Lite().Name != "Lite" {
		t.Error("catalog names wrong")
	}
	if len(Table1()) != 6 {
		t.Errorf("Table1 rows = %d, want 6", len(Table1()))
	}
	if len(Models()) != 3 {
		t.Errorf("Models = %d, want 3", len(Models()))
	}
	if _, ok := GPUByName("Lite+NetBW"); !ok {
		t.Error("GPUByName failed")
	}
	if _, ok := ModelByName("Llama3-8B"); !ok {
		t.Error("ModelByName failed")
	}
}

func TestDesignCluster(t *testing.T) {
	d := DesignCluster(H100(), 4)
	if d.Split != 4 {
		t.Errorf("split = %d", d.Split)
	}
	if d.ShorelineGain != 2 {
		t.Errorf("shoreline gain = %v, want 2", d.ShorelineGain)
	}
	if d.YieldGain < 1.7 || d.YieldGain > 1.95 {
		t.Errorf("yield gain = %v, want ≈1.8", d.YieldGain)
	}
	if d.SiliconCostSaving < 0.4 {
		t.Errorf("silicon saving = %v, want ≥0.4", d.SiliconCostSaving)
	}
	if d.Cooling.String() != "air" {
		t.Errorf("Lite cooling = %v, want air", d.Cooling)
	}
	if d.OverclockHeadroom < 1.1 {
		t.Errorf("overclock headroom = %v, want ≥1.1", d.OverclockHeadroom)
	}
	if d.AvailabilityGain <= 0 {
		t.Errorf("availability gain = %v, want > 0", d.AvailabilityGain)
	}
	if d.CircuitEnergyAdvantage < 0.5 {
		t.Errorf("circuit advantage = %v, want ≥0.5", d.CircuitEnergyAdvantage)
	}
}

func TestDesignClusterPanicsOnBadSplit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("DesignCluster(1) did not panic")
		}
	}()
	DesignCluster(H100(), 1)
}

func TestEstimateAndSearch(t *testing.T) {
	opts := DefaultOptions()
	est, err := EstimateConfig(H100(), Models()[0], Prefill, 2, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if est.Latency <= 0 {
		t.Error("zero latency estimate")
	}
	best, err := SearchBest(Lite(), Models()[0], Decode, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !best.MeetsSLO {
		t.Error("search returned SLO violation")
	}
}

func TestStudies(t *testing.T) {
	opts := DefaultOptions()
	fa, err := PrefillStudy(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fa) != 12 { // 3 models × 4 configs
		t.Errorf("prefill study rows = %d, want 12", len(fa))
	}
	fb, err := DecodeStudy(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fb) != 12 {
		t.Errorf("decode study rows = %d, want 12", len(fb))
	}
	// Every H100 bar normalizes to exactly 1.
	for i := 0; i < 12; i += 4 {
		if fa[i].Normalized != 1 || fb[i].Normalized != 1 {
			t.Error("H100 normalization broken")
		}
	}
}

func TestServeViaFacade(t *testing.T) {
	cfg := ServeConfig{
		GPU:              H100(),
		Model:            mustModel(t, "Llama3-8B"),
		Opts:             DefaultOptions(),
		PrefillInstances: 1, PrefillGPUs: 1,
		DecodeInstances: 1, DecodeGPUs: 1,
		MaxPrefillBatch: 2, MaxDecodeBatch: 16,
	}
	gen := CodingWorkload(0.5, 3)
	reqs, err := gen.Generate(60)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Serve(cfg, reqs, 120)
	if err != nil {
		t.Fatal(err)
	}
	if m.Arrived == 0 {
		t.Error("no arrivals in façade serve run")
	}
}

func TestWorkloads(t *testing.T) {
	for _, g := range []Workload{CodingWorkload(1, 1), ConversationWorkload(1, 1)} {
		reqs, err := g.Generate(30)
		if err != nil {
			t.Fatal(err)
		}
		if len(reqs) == 0 {
			t.Error("no requests generated")
		}
	}
}

func TestWriteReport(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteReport(&buf, 42); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table 1", "Figure 1", "Figure 2", "Figure 3a", "Figure 3b",
		"yield", "shoreline", "fabric", "power", "blast radius",
		"granularity", "serving",
	} {
		if !strings.Contains(strings.ToLower(out), strings.ToLower(want)) {
			t.Errorf("report missing %q section", want)
		}
	}
	// Reports are deterministic.
	var buf2 bytes.Buffer
	if err := WriteReport(&buf2, 42); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("report is not deterministic at fixed seed")
	}
}

func mustModel(t *testing.T, name string) Transformer {
	t.Helper()
	m, ok := ModelByName(name)
	if !ok {
		t.Fatalf("model %s missing", name)
	}
	return m
}
