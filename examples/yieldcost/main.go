// Yield and cost: walk the die-size frontier from a full H100-class die
// down to 1/16 splits, showing where the paper's quarter-die sweet spot
// comes from.
//
//	go run ./examples/yieldcost
package main

import (
	"fmt"

	"litegpu"
)

func main() {
	fmt.Println("Die-size frontier (300 mm wafer, N4-class node, D0 = 0.1 defects/cm²)")
	fmt.Printf("%-9s %6s %11s %9s %11s %11s %11s\n",
		"fraction", "mm²", "dies/wafer", "yield", "yield gain", "Si saving", "pkg saving")
	for _, r := range litegpu.YieldStudy() {
		fmt.Printf("%-9.4g %6.0f %11d %8.1f%% %10.2f× %10.0f%% %10.0f%%\n",
			r.Fraction, float64(r.Area), r.DiesPerWafer, r.PoissonYield*100,
			r.YieldGain, r.SiliconSaving*100, r.PackageSaving*100)
	}

	fmt.Println("\nShoreline at constant total silicon:")
	fmt.Printf("%-7s %9s %15s %10s %14s\n", "split", "die mm²", "perimeter mm", "BW gain", "max BW/die")
	for _, r := range litegpu.ShorelineStudy() {
		fmt.Printf("%-7d %9.0f %15.0f %9.2f× %14v\n",
			r.Split, float64(r.PerDieArea), float64(r.TotalPerimeter), r.Gain, r.MaxBandwidth)
	}

	fmt.Println("\nReading the frontier: silicon cost per compute keeps falling as dies")
	fmt.Println("shrink (yield), but fixed per-package costs eventually dominate — the")
	fmt.Println("full-package saving peaks near the paper's 1/4 split and then reverses.")
}
