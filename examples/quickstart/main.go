// Quickstart: derive a Lite-GPU cluster design from an H100 and run the
// paper's headline comparison for one model.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"litegpu"
)

func main() {
	// Step 1: split the H100 four ways — the paper's running example.
	design := litegpu.DesignCluster(litegpu.H100(), 4)
	fmt.Println("== Lite-GPU design: H100 split 4 ways ==")
	fmt.Printf("parent: %v\n", design.Parent)
	fmt.Printf("lite:   %v\n", design.Lite)
	fmt.Printf("shoreline (bandwidth-to-compute) gain: %.2f×\n", design.ShorelineGain)
	fmt.Printf("die yield gain: %.2f×, silicon cost saving: %.0f%%\n",
		design.YieldGain, design.SiliconCostSaving*100)
	fmt.Printf("cooling: %v (clock headroom %.2f×)\n", design.Cooling, design.OverclockHeadroom)
	fmt.Printf("per-package failure rate: %.2f%%/yr (H100: %.2f%%/yr)\n",
		litegpu.GPUAnnualFailureRate(design.Lite)*100,
		litegpu.GPUAnnualFailureRate(design.Parent)*100)

	// Step 2: roofline the two clusters on Llama3-70B decode under the
	// paper's SLOs.
	fmt.Println("\n== Llama3-70B decode, best configurations (TBT ≤ 50 ms) ==")
	m := litegpu.Models()[0]
	opts := litegpu.DefaultOptions()
	for _, gpu := range []litegpu.GPU{litegpu.H100(), litegpu.Lite()} {
		best, err := litegpu.SearchBest(gpu, m, litegpu.Decode, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %v\n", gpu.Name+":", best)
	}

	// Step 3: what the Lite cluster buys back with its extra shoreline.
	memBW, _ := litegpu.GPUByName("Lite+MemBW")
	best, err := litegpu.SearchBest(memBW, m, litegpu.Decode, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6s %v\n", memBW.Name+":", best)
}
