// Scheduling: run the same decode-heavy bursty trace through all three
// serving schedulers — static phase splitting, continuous batching, and
// chunked prefill — on an equal-silicon big-GPU vs Lite-GPU pair.
//
// The paper argues Lite-GPU clusters stand or fall on how well serving
// software hides the smaller per-GPU capacity. This example shows the
// software lever directly: on the identical hardware and trace,
// continuous batching turns the static split's stranded prefill silicon
// into goodput, and chunked prefill buys back the tail
// time-between-tokens that full prefill passes cost.
//
//	go run ./examples/scheduling
//
// Expected shape of the output (exact numbers depend on the catalog
// calibration):
//
//   - static completes the fewest requests on both GPU types (~3 200 of
//     ~4 800) — its lone decode pool saturates while the prefill pool
//     idles below 20%;
//   - continuous and chunked complete ~25% more at ~25% higher goodput,
//     trading a few ms of TBT p99 and a long TTFT tail for it (the
//     colocated pool prioritizes finishing admitted work over starting
//     new prompts when overloaded);
//   - chunked tracks continuous here because conversation prompts are
//     short; its TBT p99 advantage appears on long-prompt traces, where
//     stalls are bounded by the 512-token chunk instead of a whole
//     prompt pass (see docs/scheduling.md);
//   - the Lite pool (4 quarter-GPUs per H100 of silicon) reproduces the
//     H100 pool's ordering — the scheduling conclusions transfer across
//     the hardware axis.
package main

import (
	"fmt"
	"log"

	"litegpu"
)

func main() {
	const (
		rate    = 8.0 // req/s before bursts; bursts push to 4×
		horizon = 300 // arrival window == run horizon (no drain)
		seed    = 11
	)
	model, ok := litegpu.ModelByName("Llama3-8B")
	if !ok {
		log.Fatal("model preset missing")
	}

	// Decode-heavy conversation traffic with Markov-modulated bursts:
	// the regime where scheduling, not raw FLOPs, decides throughput.
	gen := litegpu.ConversationWorkload(rate, seed)
	gen.BurstFactor = 4
	gen.BurstFraction = 0.25
	gen.BurstDwell = 40
	reqs, err := gen.Generate(horizon)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d bursty conversation requests over %d s\n\n", len(reqs), horizon)

	// One H100 of silicon per phase pool vs the same silicon as four
	// quarter-scale Lite GPUs. The colocated schedulers derive their
	// shape from the same fields, so every row is equal hardware.
	pairs := []struct {
		name string
		gpu  litegpu.GPU
		tp   int
	}{
		{"H100 (1 GPU/engine)", litegpu.H100(), 1},
		{"Lite (4 GPUs/engine)", litegpu.Lite(), 4},
	}
	for _, p := range pairs {
		fmt.Printf("== %s ==\n", p.name)
		for _, pol := range litegpu.SchedulerPolicies() {
			cfg := litegpu.ServeConfig{
				GPU:              p.gpu,
				Model:            model,
				Opts:             litegpu.DefaultOptions(),
				Scheduler:        pol,
				PrefillInstances: 1, PrefillGPUs: p.tp,
				DecodeInstances: 1, DecodeGPUs: p.tp,
				MaxPrefillBatch: 4, MaxDecodeBatch: 8,
			}
			m, err := litegpu.Serve(cfg, reqs, horizon) // no drain: backlog counts
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-10s completed %4d/%4d  goodput %6.0f tok/s  TBT p99 %.1f ms  TTFT p99 %6.2f s\n",
				pol, m.Completed, m.Arrived, m.Goodput, m.TBT.P99*1e3, m.TTFT.P99)
		}
		fmt.Println()
	}
	fmt.Println("Reading the rows: continuous batching converts the static split's idle")
	fmt.Println("prefill engine into decode capacity (more completions, higher goodput);")
	fmt.Println("chunked prefill keeps that win, and on long-prompt traces also bounds")
	fmt.Println("each decode stall by one 512-token chunk. The same ordering holds on")
	fmt.Println("both sides of the silicon split, which is the paper's point: the")
	fmt.Println("scheduler, not the package size, sets the serving ceiling.")
}
