// Inference study: reproduce both panels of the paper's Figure 3 through
// the public API and print the normalized bars.
//
//	go run ./examples/inference
package main

import (
	"fmt"
	"log"
	"strings"

	"litegpu"
)

func main() {
	opts := litegpu.DefaultOptions()

	prefill, err := litegpu.PrefillStudy(opts)
	if err != nil {
		log.Fatal(err)
	}
	printPanel("Figure 3a — prompt prefill (tokens/s/SM, normalized to H100)", prefill)

	decode, err := litegpu.DecodeStudy(opts)
	if err != nil {
		log.Fatal(err)
	}
	printPanel("Figure 3b — decode (tokens/s/SM, normalized to H100)", decode)

	fmt.Println("Reading the shapes:")
	fmt.Println(" - prefill: all configs tie on Llama3-70B; base Lite degrades with model size")
	fmt.Println("   (network-bound collectives); +NetBW compensates; +FLOPS wins when compute-bound.")
	fmt.Println(" - decode: base Lite trails; +MemBW overtakes the H100 on Llama3-70B and GPT3-175B")
	fmt.Println("   (the paper's shoreline-for-memory-bandwidth trade); +NetBW adds a further step.")
}

func printPanel(title string, rows []litegpu.Figure3Row) {
	fmt.Println(title)
	last := ""
	for _, r := range rows {
		if r.Model.Name != last {
			last = r.Model.Name
			fmt.Printf("  %s\n", last)
		}
		n := int(r.Normalized * 25)
		if n > 42 {
			n = 42
		}
		fmt.Printf("    %-18s %5.3f %s\n", r.GPU.Name, r.Normalized, strings.Repeat("#", n))
	}
	fmt.Println()
}
