// Fault tolerance: blast radius and hot-spare economics for an 8×H100
// model instance versus its 32×Lite-GPU replacement, with Monte Carlo
// validation over a 10-year mission.
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"

	"litegpu"
)

func main() {
	const (
		years  = 10
		trials = 300
		seed   = 2025
	)
	fmt.Println("Instance availability over a 10-year mission (24 h repair, 60 s spare takeover)")
	fmt.Printf("%-6s %9s %7s %13s %11s %11s %9s\n",
		"GPU", "instance", "spares", "blast radius", "analytic", "simulated", "failures")

	type row struct {
		gpu      litegpu.GPU
		instance int
		spares   int
	}
	rows := []row{
		{litegpu.H100(), 8, 0},
		{litegpu.H100(), 8, 1},
		{litegpu.Lite(), 32, 0},
		{litegpu.Lite(), 32, 1},
		{litegpu.Lite(), 32, 2},
	}
	for _, r := range rows {
		a := litegpu.SimulateAvailability(r.gpu, r.instance, r.spares, years, trials, seed)
		fmt.Printf("%-6s %9d %7d %12.2f%% %11.7f %11.7f %9.1f\n",
			r.gpu.Name, r.instance, r.spares, a.BlastRadius*100,
			a.Analytic, a.Simulated, a.FailuresPerMission)
	}

	fmt.Println("\nThe Lite instance fails more often in aggregate (more packages) but:")
	fmt.Println(" - each failure removes 4× less compute (blast radius 3.1% vs 12.5%), and")
	fmt.Println(" - one spare costs 1/32 of the instance instead of 1/8, so at equal spare")
	fmt.Println("   budget the Lite cluster holds more capacity in reserve.")
}
