// Overload: a two-tenant deployment hit by a flash crowd at roughly
// twice its sustainable rate, served with and without adaptive load
// shedding. The clients are a closed loop — each request carries a 15 s
// deadline and two retries with jittered exponential backoff — so
// overload feeds back: timed-out work is cancelled and re-submitted,
// and a client that exhausts its retries abandons.
//
// Without a gate, the queue grows without bound during the crowd and
// both tenants collapse together: the paid tier's first-token SLO
// attainment drops to a fraction, and TTFT p99 climbs to the client
// timeout. With the adaptive gate, pressure sheds the free tier first,
// the paid tier keeps its SLO, and deadline-qualified goodput is
// several times higher on the same silicon.
//
//	go run ./examples/overload
//
// Expected output (exact numbers are deterministic for the fixed seeds;
// shapes are what matters):
//
//	two tenants on 1xH100 prefill + 1xH100 decode, flash crowd 2x at t=30..90s
//	                     no gate    adaptive gate
//	paid TTFT attainment   ~18%         ~81%
//	free TTFT attainment   ~16%          ~2%
//	TTFT p99               ~15s        ~0.1s
//	useful goodput       ~619 tok/s  ~2706 tok/s
package main

import (
	"fmt"

	"litegpu"
)

func main() {
	// Two tenant classes share the deployment: a paid tier at priority 1
	// and a heavier free tier at priority 0, with a flash crowd doubling
	// both arrival rates from t=30s to t=90s.
	workload := litegpu.MultiWorkload{
		Classes: []litegpu.TenantClass{
			{Name: "paid", Gen: litegpu.ConversationWorkload(20, 0), Priority: 1},
			{Name: "free", Gen: litegpu.ConversationWorkload(60, 0), Priority: 0},
		},
		Envelope: litegpu.WorkloadEnvelope{
			Flash: []litegpu.FlashCrowd{{At: 30, Duration: 60, Factor: 2}},
		},
		Seed: 5,
	}
	reqs, err := workload.Generate(120)
	if err != nil {
		panic(err)
	}

	// Closed-loop clients: 15 s deadline, two retries with jittered
	// exponential backoff, then abandonment. The paid tier's TTFT SLO is
	// 2 s; the free tier has no first-token promise.
	clients := litegpu.ServeClientConfig{
		Classes: []litegpu.ClientBehavior{
			{Timeout: 15, Retries: 2, BackoffBase: 2, BackoffCap: 8, Jitter: 0.5, TTFTSLO: 2},
			{Timeout: 15, Retries: 2, BackoffBase: 2, BackoffCap: 8, Jitter: 0.5},
		},
		Seed: 7,
	}

	cfg := litegpu.ServeConfig{
		GPU:              litegpu.H100(),
		Model:            mustModel("Llama3-8B"),
		Opts:             litegpu.DefaultOptions(),
		PrefillInstances: 1, PrefillGPUs: 1,
		DecodeInstances: 1, DecodeGPUs: 1,
		MaxPrefillBatch: 4, MaxDecodeBatch: 64,
		Client: clients,
		// Decode KV memory is a finite paged resource: overload pressure
		// shows up as preemptions and recompute, not just queueing.
		KV: litegpu.ServeKVConfig{Policy: litegpu.KVRecompute, Blocks: 2000},
	}
	ungated, err := litegpu.Serve(cfg, reqs, 300)
	if err != nil {
		panic(err)
	}

	gated := cfg
	gated.Admission = litegpu.ServeAdmissionConfig{
		Policy:     litegpu.AdmitAdaptive,
		QueueLimit: 48,
		Levels:     4,
	}
	shed, err := litegpu.Serve(gated, reqs, 300)
	if err != nil {
		panic(err)
	}

	fmt.Println("two tenants on 1xH100 prefill + 1xH100 decode, flash crowd 2x at t=30..90s")
	fmt.Printf("%-22s %12s %14s\n", "", "no gate", "adaptive gate")
	fmt.Printf("%-22s %11.1f%% %13.1f%%\n", "paid TTFT attainment",
		ungated.Classes[0].TTFTAttainment*100, shed.Classes[0].TTFTAttainment*100)
	fmt.Printf("%-22s %11.1f%% %13.1f%%\n", "free TTFT attainment",
		ungated.Classes[1].TTFTAttainment*100, shed.Classes[1].TTFTAttainment*100)
	fmt.Printf("%-22s %11.1fs %13.1fs\n", "TTFT p99", ungated.TTFT.P99, shed.TTFT.P99)
	fmt.Printf("%-22s %7.0f tok/s %9.0f tok/s\n", "useful goodput",
		ungated.UsefulGoodput, shed.UsefulGoodput)
	fmt.Printf("%-22s %12d %14d\n", "shed", ungated.Shed, shed.Shed)
	fmt.Printf("%-22s %12d %14d\n", "abandoned", ungated.Abandoned, shed.Abandoned)

	fmt.Println("\nThe gate sheds the free tier first (adaptive queue-depth thresholds by")
	fmt.Println("priority), so the paid tier rides out the crowd inside its SLO while the")
	fmt.Println("ungated run collapses for everyone — and shedding early means the work the")
	fmt.Println("cluster does finish still matters to a waiting client.")
}

func mustModel(name string) litegpu.Transformer {
	m, ok := litegpu.ModelByName(name)
	if !ok {
		panic("unknown model " + name)
	}
	return m
}
