// Serving: drive the discrete-event simulator with the paper's coding
// workload on an H100 deployment and its Lite-GPU replacement, with
// Splitwise-style phase splitting.
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"log"

	"litegpu"
)

func main() {
	const (
		rate    = 1.2 // requests/s
		horizon = 300 // seconds of workload
		seed    = 7
	)
	model, ok := litegpu.ModelByName("Llama3-70B")
	if !ok {
		log.Fatal("model preset missing")
	}
	gen := litegpu.CodingWorkload(rate, seed)
	reqs, err := gen.Generate(horizon)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d requests over %d s (median prompt 1500 tokens)\n\n", len(reqs), horizon)

	// H100 deployment: 2 prefill engines (2 GPUs each), 1 decode engine
	// (2 GPUs) — and the equal-silicon Lite replacement (×4 GPUs each).
	deployments := []struct {
		name string
		gpu  litegpu.GPU
		tp   int
	}{
		{"H100", litegpu.H100(), 2},
		{"Lite", litegpu.Lite(), 8},
	}
	for _, d := range deployments {
		cfg := litegpu.ServeConfig{
			GPU:              d.gpu,
			Model:            model,
			Opts:             litegpu.DefaultOptions(),
			PrefillInstances: 2, PrefillGPUs: d.tp,
			DecodeInstances: 1, DecodeGPUs: d.tp,
			MaxPrefillBatch: 4, MaxDecodeBatch: 64,
		}
		m, err := litegpu.Serve(cfg, reqs, horizon+120)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s (TP=%d per engine) ==\n", d.name, d.tp)
		fmt.Printf("  completed %d/%d, tokens %d\n", m.Completed, m.Arrived, m.TokensGenerated)
		fmt.Printf("  TTFT p50/p99: %.0f / %.0f ms  (attainment %.1f%% of 1 s SLO)\n",
			m.TTFT.P50*1e3, m.TTFT.P99*1e3, m.TTFTAttainment*100)
		fmt.Printf("  TBT  p50/p99: %.1f / %.1f ms  (attainment %.1f%% of 50 ms SLO)\n",
			m.TBT.P50*1e3, m.TBT.P99*1e3, m.TBTAttainment*100)
		fmt.Printf("  utilization: prefill %.1f%%, decode %.1f%%\n\n",
			m.PrefillUtilization*100, m.DecodeUtilization*100)
	}
	fmt.Println("Equal-silicon deployments serve the same stream with comparable latency:")
	fmt.Println("the event-driven simulation confirms the roofline study under queueing.")
}
