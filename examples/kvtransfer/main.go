// KV transfer: put the network fabric inside the serving event loop
// and watch the paper's central tension play out — an equal-silicon
// H100-vs-Lite disaggregated pair serves the identical trace, but only
// the Lite deployment's KV-cache handoffs cross the datacenter fabric.
//
// The big-GPU deployment (1 prefill + 1 decode instance of 2×H100)
// fits its phase pools inside one 8-package scale-up node, so its
// prefill→decode handoff rides the node interconnect for free. The
// Lite replacement spends the same silicon as two TP-8 instances of
// quarter-size GPUs — each filling a node of its own — so every
// finished prefill ships ~246 MB of KV cache (Llama3-70B, FP8,
// 1500-token median prompts) across the switched fabric, paying port
// contention and path latency before decode can start.
//
//	go run ./examples/kvtransfer
//
// Expected shape of the output (exact numbers depend on the catalog
// calibration):
//
//   - with the fabric off, both deployments serve comparably — the
//     analytical models' equal-silicon story;
//   - over a pluggable-optics Clos (one 100 GB/s NIC per instance,
//     packet-switched), the H100 pool's TTFT does not move AT ALL
//     (byte-identical metrics — it never touches the fabric), while
//     the Lite pool pays ~2.5 ms mean TTFT for serialization, growing
//     with contention when arrivals burst;
//   - scaling path latency ×10⁴ (the network's failure-timescale
//     analogue: congested switches, deep software stacks) pushes the
//     Lite penalty toward ~10 ms per request — visible against a 1 s
//     TTFT SLO at 99% attainment;
//   - a circuit-switched co-packaged-optics flat fabric (fabric ports
//     on every GPU: a TP-8 Lite instance injects at 900 GB/s instead
//     of 100, one optical hop at any scale) recovers most of that
//     gap — the paper's Section 3 argument, measured in simulated
//     milliseconds.
package main

import (
	"fmt"
	"log"

	"litegpu"
)

func main() {
	const (
		rate    = 1.2
		horizon = 120
		run     = 300
		seed    = 42
	)
	model, ok := litegpu.ModelByName("Llama3-70B")
	if !ok {
		log.Fatal("model preset missing")
	}

	reqs, err := litegpu.CodingWorkload(rate, seed).Generate(horizon)
	if err != nil {
		log.Fatal(err)
	}

	h100 := litegpu.ServeConfig{
		GPU: litegpu.H100(), Model: model, Opts: litegpu.DefaultOptions(),
		PrefillInstances: 1, PrefillGPUs: 2,
		DecodeInstances: 1, DecodeGPUs: 2,
		MaxPrefillBatch: 4, MaxDecodeBatch: 64,
	}
	lite := h100
	lite.GPU = litegpu.Lite()
	lite.PrefillGPUs = 8 // same silicon: 4 H100s = 16 quarter-size Lites
	lite.DecodeGPUs = 8

	fabrics := []struct {
		name string
		net  litegpu.ServeNetworkConfig
	}{
		{"infinite fabric (off)", litegpu.ServeNetworkConfig{}},
		{"clos:pluggable:packet", litegpu.ServeNetworkConfig{
			Fabric: litegpu.FabricClos, Link: litegpu.LinkPluggable}},
		{"clos:pluggable:packet ×1e4 latency", litegpu.ServeNetworkConfig{
			Fabric: litegpu.FabricClos, Link: litegpu.LinkPluggable, LatencyScale: 1e4}},
		{"flat-circuit:cpo:circuit ×1e4 latency", litegpu.ServeNetworkConfig{
			Fabric: litegpu.FabricFlatCircuit, Link: litegpu.LinkCPO,
			Switch: litegpu.SwitchCircuit, LatencyScale: 1e4}},
	}

	fmt.Printf("equal-silicon pair on %s, %.1f req/s coding traffic, %d requests\n\n",
		model.Name, rate, len(reqs))
	fmt.Printf("%-38s %12s %12s %14s %10s\n",
		"fabric", "H100 TTFT", "Lite TTFT", "Lite transfer", "Lite net%")
	for _, f := range fabrics {
		h := h100
		h.Network = f.net
		l := lite
		l.Network = f.net
		hm, err := litegpu.Serve(h, reqs, run)
		if err != nil {
			log.Fatal(err)
		}
		lm, err := litegpu.Serve(l, reqs, run)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-38s %9.1f ms %9.1f ms %11.2f ms %9.1f%%\n",
			f.name, hm.TTFT.Mean*1e3, lm.TTFT.Mean*1e3,
			lm.TransferTime.Mean*1e3, lm.NetworkBoundFraction*100)
	}

	fmt.Println("\nThe H100 column never moves: its phase pools share a scale-up")
	fmt.Println("node, so the fabric is bypassed — the Lite column is the pure")
	fmt.Println("price of pushing KV handoff onto the datacenter network, and")
	fmt.Println("the last row is what co-packaged optics + circuit switching")
	fmt.Println("buys back.")
}
