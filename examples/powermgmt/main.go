// Power management: the paper's finer-granularity argument — serve a
// partial load on one H100 (DVFS only) versus four Lite-GPUs (gate the
// idle members).
//
//	go run ./examples/powermgmt
package main

import (
	"fmt"

	"litegpu"
)

func main() {
	fmt.Println("Serving a partial load: 1×H100 (down-clock every SM) vs 4×Lite (gate idle members)")
	fmt.Printf("%-6s %12s %13s %12s %9s\n", "load", "H100 power", "Lite active", "Lite power", "saving")
	for _, load := range []float64{0.05, 0.10, 0.25, 0.40, 0.60, 0.80, 1.00} {
		r := litegpu.PowerAtLoad(litegpu.H100(), 4, load)
		fmt.Printf("%5.0f%% %12v %13d %12v %8.1f%%\n",
			load*100, r.BigWatts, r.LiteActive, r.LiteWatts, r.Saving*100)
	}
	fmt.Println("\nBelow the big GPU's DVFS floor the whole die keeps leaking; the Lite")
	fmt.Println("group simply turns members off — the paper's \"down-clocking only a")
	fmt.Println("portion of SMs\", realized across packages. At full load both run the")
	fmt.Println("same silicon at the same voltage, so the saving vanishes.")
}
