package litegpu

import (
	"context"
	"fmt"

	"litegpu/internal/inference"
	"litegpu/internal/mathx"
	"litegpu/internal/serve"
	"litegpu/internal/sweep"
)

// SweepWorkload names a workload family for the serving sweep; Make
// builds the generator for one cell's rate and derived seed.
type SweepWorkload struct {
	Name string
	Make func(rate float64, seed uint64) Workload
}

// DefaultSweepWorkloads returns the two production workload shapes the
// paper evaluates.
func DefaultSweepWorkloads() []SweepWorkload {
	return []SweepWorkload{
		{Name: "coding", Make: CodingWorkload},
		{Name: "conversation", Make: ConversationWorkload},
	}
}

// SweepFailureMode is one failure-axis setting of the sweep: a label
// plus a failure-injection config (Seed is overridden per cell so the
// grid stays byte-identical at any worker count).
type SweepFailureMode struct {
	Name     string
	Failures ServeFailureConfig
}

// DefaultSweepFailureModes returns the single clean mode — sweeps only
// grow a failure axis when asked.
func DefaultSweepFailureModes() []SweepFailureMode {
	return []SweepFailureMode{{Name: "none"}}
}

// SweepSpec parameterizes Sweep. Zero-value fields take the defaults
// noted on each.
type SweepSpec struct {
	// GPUs defaults to the full Table 1 catalog.
	GPUs []GPU
	// Models defaults to the three paper models.
	Models []Transformer
	// Workloads defaults to DefaultSweepWorkloads.
	Workloads []SweepWorkload
	// Rates (req/s) defaults to {0.5, 1.5}.
	Rates []float64
	// Schedulers is the scheduling-policy axis (default
	// {StaticDisaggregated}); add ContinuousBatching / ChunkedPrefill
	// entries to compare serving disciplines cell-for-cell on the same
	// traces.
	Schedulers []SchedulerPolicy
	// FailureModes defaults to the single clean mode; add entries (e.g.
	// an accelerated-AFR config with hot spares) to cross the grid with
	// failure injection.
	FailureModes []SweepFailureMode
	// Fabrics is the network axis (default: the single zero config —
	// the infinite fabric). Add entries (e.g. a pluggable-optics Clos
	// and a circuit-switched CPO flat fabric) to simulate every grid
	// point with each fabric in the event loop, on identical traces, so
	// the fabric columns isolate what the network costs each deployment.
	Fabrics []ServeNetworkConfig
	// KVPolicies is the KV-memory axis (default: the single zero config
	// — infinite decode memory). Add entries (e.g. recompute+prefix and
	// swap+prefix) to simulate every grid point under each memory model,
	// on identical traces, so the KV columns isolate what finite cache
	// memory costs each deployment.
	KVPolicies []ServeKVConfig
	// Admissions is the overload-gate axis (default: the single zero
	// config — admit everything). Add entries (e.g. a priority gate and
	// an adaptive gate) to simulate every grid point behind each gate,
	// on identical traces, so the admission columns isolate what
	// shedding buys (and costs) each deployment under overload.
	Admissions []ServeAdmissionConfig

	// Client attaches closed-loop client behavior (deadlines, retries
	// with backoff, abandonment) to every cell. The zero value keeps
	// the historical open-loop clients.
	Client ServeClientConfig
	// Straggler attaches the persistent slow-instance model to every
	// cell. The zero value keeps instances uniform.
	Straggler ServeStragglerConfig

	// Horizon is the arrival window (default 300 s); the simulation runs
	// Drain (default 120 s) past it so in-flight requests can finish.
	Horizon Seconds
	Drain   Seconds

	// Seed is the base workload seed; every cell derives its own stream
	// from (Seed, cell index), so results are byte-identical at any
	// worker count.
	Seed uint64

	// Opts defaults to DefaultOptions.
	Opts Options

	// PrefillInstances and DecodeInstances size each deployment's pools
	// (default 1 each); the tensor-parallel degree per instance is
	// auto-sized to the smallest cluster the model fits on.
	PrefillInstances int
	DecodeInstances  int
	// MaxPrefillBatch and MaxDecodeBatch default to 4 and 64.
	MaxPrefillBatch int
	MaxDecodeBatch  int

	// Workers caps the worker pool (0 = GOMAXPROCS; 1 = sequential).
	Workers int

	// Observer, when non-nil, attaches to the grid's first cell (index
	// 0). Cells run concurrently and an Observer is single-writer, so
	// the sweep instruments one representative cell — the first in
	// enumeration order — rather than racing the whole grid; the other
	// cells run unobserved and unaffected.
	Observer *Observer
}

func (s SweepSpec) withDefaults() SweepSpec {
	if len(s.GPUs) == 0 {
		s.GPUs = Table1()
	}
	if len(s.Models) == 0 {
		s.Models = Models()
	}
	if len(s.Workloads) == 0 {
		s.Workloads = DefaultSweepWorkloads()
	}
	if len(s.Rates) == 0 {
		s.Rates = []float64{0.5, 1.5}
	}
	if len(s.Schedulers) == 0 {
		s.Schedulers = []SchedulerPolicy{StaticDisaggregated}
	}
	if len(s.FailureModes) == 0 {
		s.FailureModes = DefaultSweepFailureModes()
	}
	if len(s.Fabrics) == 0 {
		s.Fabrics = []ServeNetworkConfig{{}}
	}
	if len(s.KVPolicies) == 0 {
		s.KVPolicies = []ServeKVConfig{{}}
	}
	if len(s.Admissions) == 0 {
		s.Admissions = []ServeAdmissionConfig{{}}
	}
	if s.Horizon <= 0 {
		s.Horizon = 300
	}
	if s.Drain <= 0 {
		s.Drain = 120
	}
	if s.Opts == (Options{}) {
		s.Opts = DefaultOptions()
	}
	if s.PrefillInstances <= 0 {
		s.PrefillInstances = 1
	}
	if s.DecodeInstances <= 0 {
		s.DecodeInstances = 1
	}
	if s.MaxPrefillBatch <= 0 {
		s.MaxPrefillBatch = 4
	}
	if s.MaxDecodeBatch <= 0 {
		s.MaxDecodeBatch = 64
	}
	return s
}

// SweepCell is one point of the sweep grid: a (GPU, model, workload,
// rate, scheduler, failure-mode) combination with its simulated serving
// metrics. Err is non-empty when the combination is infeasible (e.g.
// the model does not fit the GPU type's largest legal cluster); such
// cells carry zero Metrics.
type SweepCell struct {
	GPU       string
	Model     string
	Workload  string
	Rate      float64
	Scheduler string
	Failure   string
	// Fabric names the cell's network config ("off" when the fabric
	// axis is not in play).
	Fabric string
	// KV names the cell's KV-memory config ("off" when the memory axis
	// is not in play).
	KV string
	// Admission names the cell's overload gate ("none" when the
	// admission axis is not in play).
	Admission string

	// Config is the auto-sized deployment the cell simulated.
	Config ServeConfig
	// Metrics is the serving outcome.
	Metrics ServeMetrics
	// Err records an infeasible combination.
	Err string
}

// Sweep crosses GPU types × models × workloads × arrival rates ×
// scheduling policies × failure modes × fabrics × KV-memory configs ×
// admission gates and simulates a serving deployment for every combination, fanning
// the grid over a worker pool. Cell order is the nested enumeration order of the spec
// slices, and each cell's workload seed derives from its grid index —
// so the returned slice is byte-identical whether it ran on one worker
// or many.
//
// Infeasible combinations are reported per cell via SweepCell.Err rather
// than failing the sweep.
func Sweep(ctx context.Context, spec SweepSpec) ([]SweepCell, error) {
	spec = spec.withDefaults()
	type point struct {
		gpu      GPU
		model    Transformer
		workload SweepWorkload
		rate     float64
		sched    SchedulerPolicy
		failure  SweepFailureMode
		fabric   ServeNetworkConfig
		kvc      ServeKVConfig
		adm      ServeAdmissionConfig
	}
	var points []point
	for _, g := range spec.GPUs {
		for _, m := range spec.Models {
			for _, w := range spec.Workloads {
				for _, r := range spec.Rates {
					for _, sp := range spec.Schedulers {
						for _, f := range spec.FailureModes {
							for _, nc := range spec.Fabrics {
								for _, kvc := range spec.KVPolicies {
									for _, adm := range spec.Admissions {
										points = append(points, point{gpu: g, model: m, workload: w, rate: r, sched: sp, failure: f, fabric: nc, kvc: kvc, adm: adm})
									}
								}
							}
						}
					}
				}
			}
		}
	}
	// The request stream depends only on (workload, rate): every GPU,
	// model, scheduler, failure mode, and fabric at the same workload
	// point faces the identical trace, so cross-hardware (and
	// cross-policy, clean-vs-faulty, fabric-vs-fabric) comparisons
	// within the grid are noise-free. The seed position is the
	// workload×rate coordinate of the cell.
	traceBlock := len(spec.Workloads) * len(spec.Rates)
	innerModes := len(spec.Schedulers) * len(spec.FailureModes) * len(spec.Fabrics) * len(spec.KVPolicies) * len(spec.Admissions)

	return sweep.RunN(ctx, spec.Workers, points,
		func(_ context.Context, idx int, p point) (SweepCell, error) {
			c := SweepCell{GPU: p.gpu.Name, Model: p.model.Name, Workload: p.workload.Name, Rate: p.rate,
				Scheduler: p.sched.String(), Failure: p.failure.Name, Fabric: p.fabric.String(), KV: p.kvc.String(),
				Admission: p.adm.Policy.String()}
			pTP, err := inference.MinFeasibleTP(p.gpu, p.model, Prefill, spec.Opts)
			if err != nil {
				c.Err = err.Error()
				return c, nil
			}
			dTP, err := inference.MinFeasibleTP(p.gpu, p.model, Decode, spec.Opts)
			if err != nil {
				c.Err = err.Error()
				return c, nil
			}
			c.Config = ServeConfig{
				GPU: p.gpu, Model: p.model, Opts: spec.Opts,
				Scheduler:        p.sched,
				PrefillInstances: spec.PrefillInstances, PrefillGPUs: pTP,
				DecodeInstances: spec.DecodeInstances, DecodeGPUs: dTP,
				MaxPrefillBatch: spec.MaxPrefillBatch, MaxDecodeBatch: spec.MaxDecodeBatch,
				Network:   p.fabric,
				KV:        p.kvc,
				Admission: p.adm,
				Client:    spec.Client,
				Straggler: spec.Straggler,
			}
			gen := p.workload.Make(p.rate, mathx.DeriveSeed(spec.Seed, uint64((idx/innerModes)%traceBlock)))
			// Arrivals stream into the simulation on demand — no cell ever
			// materializes its trace, so sweep memory is bounded by the
			// in-flight working set per worker, not by horizon×rate.
			stream, err := gen.Stream(spec.Horizon)
			if err != nil {
				return SweepCell{}, fmt.Errorf("litegpu: sweep cell %d (%s/%s/%s@%.2f): %w",
					idx, c.GPU, c.Model, c.Workload, c.Rate, err)
			}
			cc := ServeClusterConfig{
				Pools:    []ServePool{{Name: c.GPU, Config: c.Config}},
				Failures: p.failure.Failures,
			}
			if idx == 0 {
				cc.Observer = spec.Observer
			}
			// Each cell's failure processes get their own derived stream.
			cc.Failures.Seed = mathx.DeriveSeed(spec.Seed^0xfa11, uint64(idx))
			cm, err := serve.RunClusterFrom(cc, stream, spec.Horizon+spec.Drain)
			if err != nil {
				c.Err = err.Error()
				return c, nil
			}
			c.Metrics = cm.Pools[0].Metrics
			return c, nil
		})
}

// Capacity planning -----------------------------------------------------------

// CapacitySLO sets the attainment targets a capacity plan must meet; see
// serve.SLO for field semantics and defaults.
type CapacitySLO = serve.SLO

// CapacityPlan is a feasible deployment with its simulated metrics and
// TCO readout; see serve.Plan.
type CapacityPlan = serve.Plan

// CapacityRequest is the full capacity-search parameterization (GPU,
// model, workload, horizon, per-instance TP degrees, batch caps, search
// ceiling); see serve.PlanRequest for field semantics and defaults.
// Availability-aware searches reuse a first-failure snapshot across
// spare counts by default; NoSnapshotReuse restores the full-replay
// path (the chosen plan is byte-identical either way).
type CapacityRequest = serve.PlanRequest

// PlanCapacityRequest runs the capacity planner with full control over
// every knob. PlanCapacity and PlanCapacityOpts are conveniences over it.
func PlanCapacityRequest(req CapacityRequest, slos CapacitySLO) (CapacityPlan, error) {
	return serve.PlanCapacity(req, slos)
}

// PlanCapacity sizes the cheapest phase-split deployment of the given
// GPU type that serves the workload at `rate` requests/s while meeting
// the SLO attainment targets, by binary-searching prefill and decode
// instance counts over the serving simulator. The returned plan carries
// the full TCO breakdown, including dollars per million tokens.
//
// The workload's Rate field is overridden with `rate`; its Seed is used
// as-is. Latency limits come from DefaultOptions (TTFT ≤ 1 s, TBT ≤
// 50 ms); use PlanCapacityOpts for custom limits or sizing knobs.
func PlanCapacity(gpu GPU, m Transformer, w Workload, rate float64, slos CapacitySLO) (CapacityPlan, error) {
	return PlanCapacityOpts(gpu, m, w, rate, slos, DefaultOptions(), 0)
}

// PlanCapacityOpts is PlanCapacity with explicit inference Options and a
// per-pool instance-count ceiling (0 = default 64).
func PlanCapacityOpts(gpu GPU, m Transformer, w Workload, rate float64, slos CapacitySLO, opts Options, maxInstances int) (CapacityPlan, error) {
	w.Rate = rate
	return PlanCapacityRequest(CapacityRequest{
		GPU:          gpu,
		Model:        m,
		Opts:         opts,
		Workload:     w,
		MaxInstances: maxInstances,
	}, slos)
}
