package litegpu

import (
	"reflect"
	"testing"
)

// TestServeWithFailuresBlastRadius is the paper's headline serving
// claim: at equal aggregate throughput and paper-calibrated AFRs, the
// Lite-GPU deployment loses a smaller capacity fraction per failure
// event than the big-GPU deployment.
func TestServeWithFailuresBlastRadius(t *testing.T) {
	res, err := ServeWithFailures(FailureServingSpec{RefAFR: 0.09, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	big, lite := res.Big.Metrics, res.Lite.Metrics
	if lite.BlastRadius >= big.BlastRadius {
		t.Errorf("Lite blast radius %v not below big-GPU %v", lite.BlastRadius, big.BlastRadius)
	}
	// Equal silicon must mean comparable served throughput on the
	// identical trace.
	if big.Completed == 0 {
		t.Fatal("big deployment served nothing")
	}
	if ratio := float64(lite.Completed) / float64(big.Completed); ratio < 0.8 || ratio > 1.25 {
		t.Errorf("Lite/big completion ratio %v, want ≈1 (equal aggregate throughput)", ratio)
	}
	// The Lite side shards into more, smaller instances.
	bigInst := res.Big.Config.PrefillInstances + res.Big.Config.DecodeInstances
	liteInst := res.Lite.Config.PrefillInstances + res.Lite.Config.DecodeInstances
	if liteInst <= bigInst {
		t.Errorf("Lite deployment has %d instances vs big %d; want more", liteInst, bigInst)
	}
	if res.Big.Config.TotalGPUs()*4 != res.Lite.Config.TotalGPUs() {
		t.Errorf("silicon mismatch: big %d GPUs ×4 vs lite %d", res.Big.Config.TotalGPUs(), res.Lite.Config.TotalGPUs())
	}
}

// TestServeWithFailuresAccelerated stresses the same pair under an
// accelerated failure clock so failures actually land inside the
// window: the finer-grained Lite deployment — smaller blast radius,
// Split× more spares for the same spare silicon — must keep more of its
// capacity and goodput in service. (The run is fully deterministic at
// this seed; the margin is wide — ~0.8 vs ~0.2 availability — so this
// is not a tuned knife-edge.)
func TestServeWithFailuresAccelerated(t *testing.T) {
	res, err := ServeWithFailures(FailureServingSpec{RefAFR: 0.09, TimeScale: 2e6, Horizon: 600, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	big, lite := res.Big.Metrics, res.Lite.Metrics
	if big.FailureEvents == 0 || lite.FailureEvents == 0 {
		t.Fatalf("accelerated clock produced no failures (big %d, lite %d)", big.FailureEvents, lite.FailureEvents)
	}
	if lite.Availability <= big.Availability {
		t.Errorf("Lite availability %v not above big-GPU %v under failures (big events %d, lite events %d)",
			lite.Availability, big.Availability, big.FailureEvents, lite.FailureEvents)
	}
	if lite.Goodput <= big.Goodput {
		t.Errorf("Lite goodput %v not above big-GPU %v under failures", lite.Goodput, big.Goodput)
	}
}

func TestServeWithFailuresDeterministic(t *testing.T) {
	spec := FailureServingSpec{TimeScale: 4e6, Seed: 7}
	a, err := ServeWithFailures(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ServeWithFailures(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("repeated ServeWithFailures runs diverge")
	}
}
