package litegpu

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links; the target group is checked
// only when it is repo-relative (external URLs and anchors are skipped).
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocRelativeLinks is the docs-site link checker CI runs: every
// relative link in README.md and docs/*.md must point at a file or
// directory that exists in the repository, so prose cannot rot ahead of
// the code it describes.
func TestDocRelativeLinks(t *testing.T) {
	pages := []string{"README.md"}
	docs, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) == 0 {
		t.Fatal("docs/*.md matched nothing; the docs site is missing")
	}
	pages = append(pages, docs...)

	for _, page := range pages {
		raw, err := os.ReadFile(page)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "#") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			target = strings.Split(target, "#")[0] // strip in-page anchors
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(page), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s links to %q, which does not resolve (%v)", page, m[1], err)
			}
		}
	}
}

// TestDocsCrossLinked keeps the three docs pages discoverable: the
// README must link every docs page, and each page must name the repo's
// current scheduler vocabulary rather than a stale one.
func TestDocsCrossLinked(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, page := range []string{"docs/architecture.md", "docs/scheduling.md", "docs/cli.md"} {
		if !strings.Contains(string(readme), page) {
			t.Errorf("README.md does not link %s", page)
		}
		raw, err := os.ReadFile(page)
		if err != nil {
			t.Fatalf("%s: %v", page, err)
		}
		for _, term := range []string{"scheduler", "chunked"} {
			if !strings.Contains(strings.ToLower(string(raw)), term) {
				t.Errorf("%s never mentions %q; is it stale?", page, term)
			}
		}
	}
}
