// Benchmark harness: one benchmark per paper table/figure/claim, each
// regenerating the artifact end-to-end. Run with
//
//	go test -bench=. -benchmem
//
// The benchmarks print the artifact once (so `go test -bench` output is
// also the reproduction report) and then measure regeneration cost.
package litegpu

import (
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"testing"

	"litegpu/internal/experiments"
	"litegpu/internal/hw"
	"litegpu/internal/inference"
	"litegpu/internal/kv"
	"litegpu/internal/netsim"
	"litegpu/internal/sim"
)

// printOnce gates the one-time artifact printouts so repeated benchmark
// iterations do not flood the output.
var printOnce sync.Map

func once(name string, f func(w io.Writer)) {
	if _, done := printOnce.LoadOrStore(name, true); done {
		return
	}
	fmt.Fprintf(os.Stdout, "\n===== %s =====\n", name)
	f(os.Stdout)
}

// BenchmarkTable1 regenerates Table 1 (E-T1).
func BenchmarkTable1(b *testing.B) {
	once("Table 1", experiments.RenderTable1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := experiments.Table1(); len(rows) != 6 {
			b.Fatal("Table 1 must have 6 rows")
		}
	}
}

// BenchmarkFigure1 regenerates the GPU-evolution timeline (E-F1).
func BenchmarkFigure1(b *testing.B) {
	once("Figure 1", experiments.RenderFigure1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := experiments.Figure1(); len(rows) < 5 {
			b.Fatal("Figure 1 timeline too short")
		}
	}
}

// BenchmarkFigure2 regenerates the deployment-example derivation (E-F2).
func BenchmarkFigure2(b *testing.B) {
	once("Figure 2", experiments.RenderFigure2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Figure2()
		if r.ShorelineGain != 2 {
			b.Fatalf("shoreline gain = %v", r.ShorelineGain)
		}
	}
}

// BenchmarkFigure3a regenerates the prefill study (E-F3a).
func BenchmarkFigure3a(b *testing.B) {
	opts := inference.DefaultOptions()
	once("Figure 3a", func(w io.Writer) {
		rows, err := experiments.Figure3a(opts)
		if err != nil {
			b.Fatal(err)
		}
		experiments.RenderFigure3(w, "Figure 3a: prompt prefill (normalized tokens/s/SM)", rows)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3a(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3aSequentialBaseline runs the prefill study pinned to
// one worker — the baseline against which BenchmarkFigure3a (which fans
// the 12-bar grid over the sweep pool) shows its speedup. On a ≥4-core
// machine the parallel variant is expected to run ≥2× faster; the two
// produce byte-identical rows (see TestFigure3ParallelMatchesSequential).
func BenchmarkFigure3aSequentialBaseline(b *testing.B) {
	opts := inference.DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3Sequential(inference.Prefill, hw.PrefillConfigs(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3b regenerates the decode study (E-F3b).
func BenchmarkFigure3b(b *testing.B) {
	opts := inference.DefaultOptions()
	once("Figure 3b", func(w io.Writer) {
		rows, err := experiments.Figure3b(opts)
		if err != nil {
			b.Fatal(err)
		}
		experiments.RenderFigure3(w, "Figure 3b: decode (normalized tokens/s/SM)", rows)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3b(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3bKVReplicationAblation regenerates Figure 3b under
// Megatron-style KV-head replication instead of the paper's implicit
// ideal sharding — quantifying that model assumption.
func BenchmarkFigure3bKVReplicationAblation(b *testing.B) {
	opts := inference.DefaultOptions()
	opts.KVReplication = true
	once("Figure 3b (KV-replication ablation)", func(w io.Writer) {
		rows, err := experiments.Figure3b(opts)
		if err != nil {
			b.Fatal(err)
		}
		experiments.RenderFigure3(w, "Figure 3b under KV-head replication (ablation)", rows)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3b(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3bNoOverlapAblation regenerates Figure 3b with engines
// serialized — quantifying the paper's overlap assumption.
func BenchmarkFigure3bNoOverlapAblation(b *testing.B) {
	opts := inference.DefaultOptions()
	opts.NoOverlap = true
	once("Figure 3b (no-overlap ablation)", func(w io.Writer) {
		rows, err := experiments.Figure3b(opts)
		if err != nil {
			b.Fatal(err)
		}
		experiments.RenderFigure3(w, "Figure 3b without stage overlap (ablation)", rows)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3b(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkYieldClaim regenerates the Section 2 yield/cost claim (E-Y1).
func BenchmarkYieldClaim(b *testing.B) {
	once("Yield/cost claim", experiments.RenderYieldStudy)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.YieldStudy()
		quarter := rows[2]
		if quarter.YieldGain < 1.7 || quarter.YieldGain > 1.95 {
			b.Fatalf("quarter-die yield gain = %v", quarter.YieldGain)
		}
	}
}

// BenchmarkShorelineClaim regenerates the Section 2 shoreline claim (E-S1).
func BenchmarkShorelineClaim(b *testing.B) {
	once("Shoreline claim", experiments.RenderShorelineStudy)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.ShorelineStudy()
		if rows[2].Gain != 2 {
			b.Fatalf("4-way shoreline gain = %v", rows[2].Gain)
		}
	}
}

// BenchmarkNetworkEnergy regenerates the Section 3 fabric study (E-N1).
func BenchmarkNetworkEnergy(b *testing.B) {
	once("Network study", func(w io.Writer) { experiments.RenderNetworkStudy(w, 512) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if adv := experiments.CircuitAdvantage(512); adv < 0.5 {
			b.Fatalf("circuit advantage = %v", adv)
		}
	}
}

// BenchmarkPowerGranularity regenerates the Section 3 power study (E-P1).
func BenchmarkPowerGranularity(b *testing.B) {
	once("Power study", experiments.RenderPowerStudy)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.PowerStudy()
		if len(rows) == 0 || rows[0].Result.Saving <= 0 {
			b.Fatal("low-load saving missing")
		}
	}
}

// BenchmarkBlastRadius regenerates the Section 3 fault-tolerance study
// (E-FT1), Monte Carlo included.
func BenchmarkBlastRadius(b *testing.B) {
	once("Blast radius study", func(w io.Writer) { experiments.RenderBlastRadiusStudy(w, 42) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.BlastRadiusStudy(42)
		if len(rows) != 6 {
			b.Fatal("blast study row count")
		}
	}
}

// BenchmarkGranularity regenerates the Section 3 allocation study (E-R1).
func BenchmarkGranularity(b *testing.B) {
	once("Granularity study", func(w io.Writer) { experiments.RenderGranularity(w, 42) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Granularity(42)
		if r.Lite.MeanStranded >= r.Big.MeanStranded {
			b.Fatal("granularity inversion")
		}
	}
}

// BenchmarkServingSim regenerates the Section 4 discrete-event
// validation (E-SV1).
func BenchmarkServingSim(b *testing.B) {
	once("Serving simulation", func(w io.Writer) {
		if err := experiments.RenderServingStudy(w, 42); err != nil {
			b.Fatal(err)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ServingStudy(42); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3bSequentialBaseline is the one-worker baseline for
// BenchmarkFigure3b.
func BenchmarkFigure3bSequentialBaseline(b *testing.B) {
	opts := inference.DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3Sequential(inference.Decode, hw.DecodeConfigs(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSweepSpec is the grid the sweep benchmarks run: 6 GPU types × 1
// model × 1 workload × 2 rates = 12 independent serving simulations.
func benchSweepSpec(workers int) SweepSpec {
	m, _ := ModelByName("Llama3-8B")
	return SweepSpec{
		Models:    []Transformer{m},
		Workloads: []SweepWorkload{{Name: "coding", Make: CodingWorkload}},
		Rates:     []float64{1, 4},
		Horizon:   120,
		Drain:     60,
		Seed:      42,
		Workers:   workers,
	}
}

// BenchmarkSweepGrid measures the public serving sweep fanned over the
// GOMAXPROCS worker pool.
func BenchmarkSweepGrid(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells, err := Sweep(context.Background(), benchSweepSpec(0))
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) != 12 {
			b.Fatalf("cells = %d", len(cells))
		}
	}
}

// BenchmarkSweepGridSequentialBaseline is the one-worker baseline for
// BenchmarkSweepGrid; on ≥4 cores the pooled variant should be ≥2×
// faster while returning byte-identical cells.
func BenchmarkSweepGridSequentialBaseline(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sweep(context.Background(), benchSweepSpec(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServingGrid measures the experiments-layer deployment × rate
// grid over the worker pool, with its sequential baseline below.
func BenchmarkServingGrid(b *testing.B) {
	once("Serving grid", func(w io.Writer) {
		if err := experiments.RenderServingGrid(w, 42); err != nil {
			b.Fatal(err)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ServingGrid(42); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServingGridSequentialBaseline is the one-worker baseline for
// BenchmarkServingGrid.
func BenchmarkServingGridSequentialBaseline(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ServingGridSequential(42); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanCapacity measures one full capacity-planning search
// (doubling + two bisections over the serving simulator).
func BenchmarkPlanCapacity(b *testing.B) {
	m, _ := ModelByName("Llama3-8B")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PlanCapacity(H100(), m, CodingWorkload(0, 7), 20, CapacitySLO{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchSingle measures one configuration search (the paper's
// inner loop).
func BenchmarkSearchSingle(b *testing.B) {
	opts := inference.DefaultOptions()
	g := H100()
	m := Models()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SearchBest(g, m, Decode, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimateSingle measures one roofline evaluation (the unit of
// work inside the search).
func BenchmarkEstimateSingle(b *testing.B) {
	opts := inference.DefaultOptions()
	g := H100()
	m := Models()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateConfig(g, m, Decode, 8, 64, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTCO regenerates the Section 4 performance-per-dollar study
// (E-C1).
func BenchmarkTCO(b *testing.B) {
	once("TCO study", experiments.RenderTCOStudy)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.TCOStudy()
		if r.PerfPerDollarGain <= 1 {
			b.Fatalf("perf/$ gain = %v", r.PerfPerDollarGain)
		}
	}
}

// BenchmarkStraggler regenerates the Section 3 synchronization study
// (E-SD1).
func BenchmarkStraggler(b *testing.B) {
	once("Straggler study", func(w io.Writer) { experiments.RenderStragglerStudy(w, 42) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.StragglerStudy(42)
		if len(rows) != 8 {
			b.Fatal("straggler row count")
		}
	}
}

// BenchmarkMemoryPool regenerates the Section 3 disaggregated-memory
// study (E-M1).
func BenchmarkMemoryPool(b *testing.B) {
	once("Memory pool study", experiments.RenderMemoryStudy)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.MemoryStudy()
		if len(rows) != 4 {
			b.Fatal("memory row count")
		}
	}
}

// BenchmarkTraining regenerates the training-scale extension study
// (E-TR1).
func BenchmarkTraining(b *testing.B) {
	once("Training study", func(w io.Writer) {
		if err := experiments.RenderTrainingStudy(w); err != nil {
			b.Fatal(err)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TrainingStudy()
		if err != nil || len(rows) != 4 {
			b.Fatalf("training study: %v (%d rows)", err, len(rows))
		}
	}
}

// stream1MWorkload is a ~10⁶-request workload (2000 req/s over a 500 s
// horizon, short prompts and outputs so a small deployment keeps up):
// the scale regime the streaming trace path exists for.
func stream1MWorkload() Workload {
	return Workload{
		Rate:         2000,
		PromptMedian: 32, PromptP99: 64,
		OutputMedian: 2, OutputP99: 4,
		MaxTokens: 128,
		Seed:      42,
	}
}

func stream1MConfig(b *testing.B) ServeConfig {
	m, ok := ModelByName("Llama3-8B")
	if !ok {
		b.Fatal("model catalog missing Llama3-8B")
	}
	return ServeConfig{
		GPU:              H100(),
		Model:            m,
		Opts:             DefaultOptions(),
		PrefillInstances: 1, PrefillGPUs: 1,
		DecodeInstances: 1, DecodeGPUs: 1,
		MaxPrefillBatch: 8, MaxDecodeBatch: 64,
	}
}

// BenchmarkTraceStream1M measures lazily iterating a ~10⁶-request
// trace: B/op is O(1) — the stream holds generator state only, never
// the trace.
func BenchmarkTraceStream1M(b *testing.B) {
	gen := stream1MWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := gen.Stream(500)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			if _, ok := s.Next(); !ok {
				break
			}
			n++
		}
		if n < 900_000 {
			b.Fatalf("stream yielded %d requests, want ~10⁶", n)
		}
	}
}

// BenchmarkTraceGenerate1M is the materialized counterpart of
// BenchmarkTraceStream1M: the identical request sequence built as a
// slice. The B/op gap between the two is the trace-memory reduction
// streaming buys (≥10×: tens of MB down to constant).
func BenchmarkTraceGenerate1M(b *testing.B) {
	gen := stream1MWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reqs, err := gen.Generate(500)
		if err != nil {
			b.Fatal(err)
		}
		if len(reqs) < 900_000 {
			b.Fatalf("generated %d requests, want ~10⁶", len(reqs))
		}
	}
}

// BenchmarkServingSimStream1M runs the full serving simulator over a
// ~10⁶-request streaming trace (E-SV1 at production scale): arrivals
// are synthesized on demand, so the trace itself costs no memory —
// B/op is the in-flight working set plus the latency-sample buffers
// the exact percentile summaries require.
func BenchmarkServingSimStream1M(b *testing.B) {
	gen := stream1MWorkload()
	cfg := stream1MConfig(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := gen.Stream(500)
		if err != nil {
			b.Fatal(err)
		}
		m, err := ServeFrom(cfg, s, 560)
		if err != nil {
			b.Fatal(err)
		}
		if m.Arrived < 900_000 || m.Completed < m.Arrived*9/10 {
			b.Fatalf("arrived %d completed %d: deployment fell behind", m.Arrived, m.Completed)
		}
	}
}

// BenchmarkServingSimMaterialized1M is BenchmarkServingSimStream1M
// with the trace materialized up front — the pre-streaming way to run
// the same simulation, kept as the memory baseline.
func BenchmarkServingSimMaterialized1M(b *testing.B) {
	gen := stream1MWorkload()
	cfg := stream1MConfig(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reqs, err := gen.Generate(500)
		if err != nil {
			b.Fatal(err)
		}
		m, err := Serve(cfg, reqs, 560)
		if err != nil {
			b.Fatal(err)
		}
		if m.Arrived < 900_000 {
			b.Fatalf("arrived %d", m.Arrived)
		}
	}
}

// BenchmarkNetsimFabric measures the raw fabric hot path: waves of
// overlapping transfers through an 8-endpoint fabric, every start and
// finish triggering the max-min reshare (packet) or the circuit drain.
// Steady state is allocation-free (the slab, id slices, and waterfill
// scratch all recycle), so allocs/op is setup only.
func BenchmarkNetsimFabric(b *testing.B) {
	for _, discipline := range []struct {
		name    string
		circuit bool
	}{{"packet", false}, {"circuit", true}} {
		b.Run(discipline.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng := sim.New(1)
				ports := make([]float64, 8)
				for j := range ports {
					ports[j] = 100e9
				}
				f, err := netsim.New(eng, netsim.Params{
					Ports: ports, PathLatency: 1e-6,
					Circuit: discipline.circuit, ReconfigTime: 1e-5,
				})
				if err != nil {
					b.Fatal(err)
				}
				done := 0
				h := func(now float64, arg uint64) { done++ }
				for wave := 0; wave < 64; wave++ {
					for t := 0; t < 16; t++ {
						f.Start(t%8, (t+1+t%3)%8, float64(1e6+t*1000), 0, h, uint64(t))
					}
					eng.Run(math.Inf(1))
				}
				if done != 64*16 {
					b.Fatalf("delivered %d transfers", done)
				}
			}
		})
	}
}

// benchFabricConfig is a Lite-GPU phase-split deployment whose TP-8
// instances each fill a scale-up node, so every KV handoff crosses the
// simulated fabric — the network-in-the-loop counterpart of the
// ServingSim benchmark.
func benchFabricConfig(b *testing.B) ServeConfig {
	m, ok := ModelByName("Llama3-70B")
	if !ok {
		b.Fatal("model catalog missing Llama3-70B")
	}
	return ServeConfig{
		GPU:              Lite(),
		Model:            m,
		Opts:             DefaultOptions(),
		PrefillInstances: 2, PrefillGPUs: 8,
		DecodeInstances: 1, DecodeGPUs: 8,
		MaxPrefillBatch: 4, MaxDecodeBatch: 64,
	}
}

// BenchmarkServingSimFabric measures the serving simulator with the
// fabric in the loop: every prefill completion becomes a ~250 MB KV
// handoff over a pluggable-optics Clos. Compare against
// BenchmarkServingSimFabricOff for the event-loop cost of netsim.
func BenchmarkServingSimFabric(b *testing.B) {
	cfg := benchFabricConfig(b)
	cfg.Network = ServeNetworkConfig{Fabric: FabricClos, Link: LinkPluggable}
	reqs, err := CodingWorkload(1.2, 42).Generate(300)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := Serve(cfg, reqs, 420)
		if err != nil {
			b.Fatal(err)
		}
		if m.NetTransfers == 0 {
			b.Fatal("fabric benchmark moved no bytes")
		}
	}
}

// BenchmarkServingSimFabricOff is the identical simulation with the
// infinite fabric — the baseline the netsim overhead is judged against.
func BenchmarkServingSimFabricOff(b *testing.B) {
	cfg := benchFabricConfig(b)
	reqs, err := CodingWorkload(1.2, 42).Generate(300)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Serve(cfg, reqs, 420); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanCapacityFabricAxis measures the planner searching the
// default four-fabric axis (each candidate simulated with its fabric
// in the loop and priced at the winning scale).
func BenchmarkPlanCapacityFabricAxis(b *testing.B) {
	m, _ := ModelByName("Llama3-70B")
	req := CapacityRequest{
		GPU:      Lite(),
		Model:    m,
		Opts:     DefaultOptions(),
		Workload: CodingWorkload(4, 7),
		Horizon:  120,
		Drain:    60,
		Fabrics:  DefaultFabricCandidates(),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PlanCapacityRequest(req, CapacitySLO{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanCapacityAuto measures the policy-parallel capacity
// search: all three scheduling policies sized concurrently over the
// worker pool (with speculative doubling probes within each), cheapest
// plan kept.
func BenchmarkPlanCapacityAuto(b *testing.B) {
	m, _ := ModelByName("Llama3-8B")
	req := CapacityRequest{
		GPU:        H100(),
		Model:      m,
		Opts:       DefaultOptions(),
		Workload:   CodingWorkload(20, 7),
		Horizon:    120,
		Drain:      60,
		Schedulers: SchedulerPolicies(),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PlanCapacityRequest(req, CapacitySLO{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanCapacityAutoSequentialBaseline pins the same search to
// one worker — the baseline against which BenchmarkPlanCapacityAuto
// shows the planner's parallel speedup on multi-core machines (the two
// return byte-identical plans; see
// TestPlanCapacityWorkerCountInvariant).
func BenchmarkPlanCapacityAutoSequentialBaseline(b *testing.B) {
	m, _ := ModelByName("Llama3-8B")
	req := CapacityRequest{
		GPU:        H100(),
		Model:      m,
		Opts:       DefaultOptions(),
		Workload:   CodingWorkload(20, 7),
		Horizon:    120,
		Drain:      60,
		Schedulers: SchedulerPolicies(),
		Workers:    1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PlanCapacityRequest(req, CapacitySLO{}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchShardCluster is the heterogeneous four-pool deployment the
// sharding benchmarks run: two H100 pools and two Lite-GPU pools behind
// one round-robin router, large enough that pool simulation dominates
// and the shard workers have real work to overlap.
func benchShardCluster(b *testing.B) (ServeClusterConfig, []Request) {
	m, ok := ModelByName("Llama3-8B")
	if !ok {
		b.Fatal("model catalog missing Llama3-8B")
	}
	small := ServeConfig{
		GPU:              H100(),
		Model:            m,
		Opts:             DefaultOptions(),
		PrefillInstances: 1, PrefillGPUs: 1,
		DecodeInstances: 1, DecodeGPUs: 1,
		MaxPrefillBatch: 4, MaxDecodeBatch: 64,
	}
	lite4 := small
	lite4.GPU = Lite()
	lite4.PrefillGPUs = 4
	lite4.DecodeGPUs = 4
	cc := ServeClusterConfig{Pools: []ServePool{
		{Config: small}, {Config: lite4}, {Config: small}, {Config: lite4},
	}}
	reqs, err := CodingWorkload(6, 17).Generate(300)
	if err != nil {
		b.Fatal(err)
	}
	return cc, reqs
}

// BenchmarkClusterSharded measures the sharded cluster path: the four
// pools advance on four workers with round-robin pre-routing (no
// synchronization windows), byte-identical to the sequential run — see
// TestShardCountInvariance. The speedup over
// BenchmarkClusterShardedSequentialBaseline tracks available cores.
func BenchmarkClusterSharded(b *testing.B) {
	cc, reqs := benchShardCluster(b)
	cc.Shards = 4
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ServeCluster(cc, reqs, 500); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterShardedSequentialBaseline runs the identical cluster
// on the sequential single-engine path.
func BenchmarkClusterShardedSequentialBaseline(b *testing.B) {
	cc, reqs := benchShardCluster(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ServeCluster(cc, reqs, 500); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFailurePlanRequest is the availability-aware capacity search the
// snapshot-reuse benchmarks run: a five-nines target makes the planner
// re-evaluate the winning deployment with spares, so the fork either
// resumes from the first failure or skips the replay outright when the
// sizing window saw none.
func benchFailurePlanRequest(b *testing.B) CapacityRequest {
	m, ok := ModelByName("Llama3-8B")
	if !ok {
		b.Fatal("model catalog missing Llama3-8B")
	}
	return CapacityRequest{
		GPU:      H100(),
		Model:    m,
		Opts:     DefaultOptions(),
		Workload: CodingWorkload(20, 7),
		Horizon:  120,
		Drain:    60,
		Failures: ServeFailureConfig{Enabled: true, Seed: 5},
	}
}

// BenchmarkPlanCapacityFailures measures the availability-aware planner
// with snapshot reuse (the default): sizing runs freeze the simulation
// at their first failure, and each spare count resumes from that fork
// instead of replaying from t=0.
func BenchmarkPlanCapacityFailures(b *testing.B) {
	req := benchFailurePlanRequest(b)
	slo := CapacitySLO{MinAvailability: 0.99999}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PlanCapacityRequest(req, slo); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanCapacityFailuresNoReuse is the same search with
// NoSnapshotReuse set: every spare count replays its full run from
// t=0. The two return byte-identical plans (see
// TestPlanSnapshotReuseInvariance); the ratio is the snapshot win.
func BenchmarkPlanCapacityFailuresNoReuse(b *testing.B) {
	req := benchFailurePlanRequest(b)
	req.NoSnapshotReuse = true
	slo := CapacitySLO{MinAvailability: 0.99999}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PlanCapacityRequest(req, slo); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKVAllocator measures steady-state paged-allocator churn:
// admit with a shared prefix, grow across block boundaries, free —
// the per-sequence lifecycle every memory-enabled decode step drives.
// Allocs/op must stay 0: the allocator is sized once and recycled.
func BenchmarkKVAllocator(b *testing.B) {
	a := kv.NewAllocator(4096, 16, true)
	churn := func() {
		var ids [32]kv.SeqID
		for j := range ids {
			id, _, _, ok := a.Alloc(512, uint64(j%4+1), 256)
			if !ok {
				b.Fatal("admission failed with ample blocks")
			}
			ids[j] = id
		}
		for _, id := range ids {
			for g := 0; g < 4; g++ {
				if !a.Grow(id) {
					b.Fatal("grow failed with ample blocks")
				}
			}
		}
		for _, id := range ids {
			a.Free(id)
		}
	}
	churn() // warm the sequence table so b.N=1 already measures steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		churn()
	}
}

// benchPagedConfig is the memory-scarce deployment the paged serving
// benchmark runs: a single H100 prefill + decode pair on Llama3-8B with
// a 600-block budget — the regime where admission gating, prefix
// caching, and preemption all fire every run.
func benchPagedConfig(b *testing.B) ServeConfig {
	m, ok := ModelByName("Llama3-8B")
	if !ok {
		b.Fatal("model catalog missing Llama3-8B")
	}
	return ServeConfig{
		GPU:              H100(),
		Model:            m,
		Opts:             DefaultOptions(),
		PrefillInstances: 1, PrefillGPUs: 1,
		DecodeInstances: 1, DecodeGPUs: 1,
		MaxPrefillBatch: 4, MaxDecodeBatch: 64,
		KV: ServeKVConfig{Policy: KVRecompute, PrefixCache: true, Blocks: 600},
	}
}

// BenchmarkServingSimPaged measures the serving simulator with the KV
// memory model in the loop under genuine scarcity. Compare against
// BenchmarkServingSim for the event-loop cost of block accounting.
func BenchmarkServingSimPaged(b *testing.B) {
	cfg := benchPagedConfig(b)
	reqs, err := ConversationWorkload(8, 3).Generate(120)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := Serve(cfg, reqs, 240)
		if err != nil {
			b.Fatal(err)
		}
		if m.KVPreemptions == 0 {
			b.Fatal("paged benchmark never preempted")
		}
	}
}

// BenchmarkServingSimClosedLoop measures the serving simulator with the
// full overload loop live: two tenant classes under a flash crowd,
// closed-loop clients timing out and retrying with seeded backoff, the
// adaptive admission gate shedding, and KV scarcity preempting. Compare
// against BenchmarkServingSimPaged for the event-loop cost of the
// client/admission machinery.
func BenchmarkServingSimClosedLoop(b *testing.B) {
	cfg := benchPagedConfig(b)
	cfg.KV.PrefixCache = false
	cfg.Client = ServeClientConfig{
		Default: ClientBehavior{Timeout: 10, Retries: 2, BackoffBase: 1, Jitter: 0.5},
		Seed:    11,
	}
	cfg.Admission = ServeAdmissionConfig{Policy: AdmitAdaptive, QueueLimit: 32, Levels: 2}
	workload := MultiWorkload{
		Classes: []TenantClass{
			{Name: "paid", Gen: ConversationWorkload(6, 0), Priority: 1},
			{Name: "free", Gen: ConversationWorkload(18, 0), Priority: 0},
		},
		Envelope: WorkloadEnvelope{Flash: []FlashCrowd{{At: 30, Duration: 60, Factor: 2}}},
		Seed:     5,
	}
	reqs, err := workload.Generate(120)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := Serve(cfg, reqs, 240)
		if err != nil {
			b.Fatal(err)
		}
		if m.Shed == 0 || m.ClientRetries == 0 {
			b.Fatal("closed-loop benchmark never shed or retried")
		}
	}
}

// BenchmarkServingSimObserved runs the identical closed-loop scenario
// with a live observer: timeline sampling on every request event plus
// 5-second probe ticks. Compare against BenchmarkServingSimClosedLoop
// for the event-loop cost of telemetry capture — the observer-off cost
// is pinned at zero by TestObserverDisabledAllocationFree, so only the
// observed run pays.
func BenchmarkServingSimObserved(b *testing.B) {
	cfg := benchPagedConfig(b)
	cfg.KV.PrefixCache = false
	cfg.Client = ServeClientConfig{
		Default: ClientBehavior{Timeout: 10, Retries: 2, BackoffBase: 1, Jitter: 0.5},
		Seed:    11,
	}
	cfg.Admission = ServeAdmissionConfig{Policy: AdmitAdaptive, QueueLimit: 32, Levels: 2}
	workload := MultiWorkload{
		Classes: []TenantClass{
			{Name: "paid", Gen: ConversationWorkload(6, 0), Priority: 1},
			{Name: "free", Gen: ConversationWorkload(18, 0), Priority: 0},
		},
		Envelope: WorkloadEnvelope{Flash: []FlashCrowd{{At: 30, Duration: 60, Factor: 2}}},
		Seed:     5,
	}
	reqs, err := workload.Generate(120)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := NewObserver(ObserverOptions{Seed: 42, ProbeInterval: 5})
		cc := ServeClusterConfig{Pools: []ServePool{{Config: cfg}}, Observer: rec}
		if _, err := ServeCluster(cc, reqs, 240); err != nil {
			b.Fatal(err)
		}
		if held, seen := rec.Sampled(); held == 0 || seen == 0 {
			b.Fatal("observed benchmark sampled nothing")
		}
		if len(rec.Probes()) == 0 {
			b.Fatal("observed benchmark probed nothing")
		}
	}
}
