package litegpu

import "litegpu/internal/kv"

// KV-cache memory as a simulated resource, re-exported from
// internal/kv. See docs/memory.md for the model and when it matters.
type (
	// ServeKVConfig selects the KV-cache memory model a serving
	// simulation runs under: the preemption recovery policy, the page
	// size in tokens, prefix caching, and an optional block-budget
	// override. The zero value is the historical infinite-memory
	// decode. Set it on ServeConfig.KV.
	ServeKVConfig = kv.Config
	// KVPolicy is the preemption recovery discipline (off, recompute,
	// swap).
	KVPolicy = kv.Policy
)

// KV preemption recovery policies.
const (
	// KVOff disables the memory model: admission is gated by the batch
	// caps alone. The zero value.
	KVOff = kv.Off
	// KVRecompute frees a preempted sequence's blocks and re-runs its
	// prefill when capacity frees up (vLLM's default recovery).
	KVRecompute = kv.Recompute
	// KVSwap moves a preempted sequence's blocks to remote memory and
	// back, priced as a fabric transfer when the network is in the
	// event loop.
	KVSwap = kv.Swap
)

// ParseKVConfig parses a CLI KV spec — "off", or "policy[+prefix]"
// with policy ∈ {recompute, swap}, e.g. "recompute+prefix".
func ParseKVConfig(spec string) (ServeKVConfig, error) {
	return kv.ParseConfig(spec)
}

// DefaultKVPolicyCandidates returns the KV memory configs the capacity
// planner searches when asked for a memory axis: the infinite-memory
// baseline and both preemption disciplines with prefix caching on.
func DefaultKVPolicyCandidates() []ServeKVConfig {
	return kv.DefaultPolicyCandidates()
}
