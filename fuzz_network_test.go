package litegpu

import (
	"strings"
	"testing"
)

// FuzzParseNetworkConfig drives the fabric-spec parser with arbitrary
// input. The parser fronts a CLI flag, so any byte string can reach it;
// it must never panic, and on success the config must round-trip
// through its canonical String() form — the property the planner's
// persisted sweep manifests rely on.
func FuzzParseNetworkConfig(f *testing.F) {
	for _, seed := range []string{
		"", "off", "none", " off ",
		"clos", "clos:cpo", "clos:copper:packet", "clos:pluggable",
		"leaf-spine", "leafspine:cpo",
		"flat-circuit:cpo:circuit", "flatcircuit",
		"clos:cpo:circuit:extra", "clos:", ":cpo", "bogus",
		"flat-circuit:copper", "CLOS", "clos:cpo:", "off:cpo",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		cfg, err := ParseNetworkConfig(spec)
		if err != nil {
			return
		}

		// Canonical fixed point: String() reparses to a config that
		// renders identically.
		s := cfg.String()
		cfg2, err := ParseNetworkConfig(s)
		if err != nil {
			t.Fatalf("ParseNetworkConfig(%q) ok, but its String %q does not reparse: %v", spec, s, err)
		}
		if got := cfg2.String(); got != s {
			t.Fatalf("String round-trip not a fixed point: %q -> %q -> %q", spec, s, got)
		}
		if cfg2.Enabled() != cfg.Enabled() {
			t.Fatalf("Enabled changed across round-trip of %q", spec)
		}

		// An empty default link must be the identity.
		cfgW, errW := ParseNetworkConfigWithLink(spec, "")
		if errW != nil || cfgW != cfg {
			t.Fatalf("ParseNetworkConfigWithLink(%q, \"\") = (%+v, %v), want identity (%+v)", spec, cfgW, errW, cfg)
		}

		// A bare fabric name accepts a spliced default link.
		if cfg.Enabled() && !strings.Contains(strings.TrimSpace(spec), ":") {
			cfgL, errL := ParseNetworkConfigWithLink(spec, "pluggable")
			if errL != nil {
				t.Fatalf("ParseNetworkConfigWithLink(%q, pluggable): %v", spec, errL)
			}
			if cfgL.Link != LinkPluggable {
				t.Fatalf("ParseNetworkConfigWithLink(%q, pluggable).Link = %v, want %v", spec, cfgL.Link, LinkPluggable)
			}
			if cfgL.Fabric != cfg.Fabric {
				t.Fatalf("splicing a link changed the fabric of %q: %v -> %v", spec, cfg.Fabric, cfgL.Fabric)
			}
		}
	})
}
